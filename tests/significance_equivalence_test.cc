// Byte-identical equivalence of the view-based significance path
// (flow-permutation views sharing timestamp storage, one cross-graph
// SharedWindowCache across the ensemble, one hoisted ensemble for
// AnalyzeAll) against a retained pre-refactor reference: deep-copying
// WithPermutedFlows (fresh timestamp/topology storage per randomized
// graph) plus per-graph enumeration with no shared cache. Real counts,
// random counts, z-scores, and p-values must match exactly across ~50
// seeded random graphs, every catalog motif, reuse_matches on/off, and
// engine pool sizes {1, 2, 4, 8}.
#include "core/significance.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "core/structural_match.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "test_util.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace flowmotif {
namespace {

// ---------------------------------------------------------------------------
// Retained reference: the pre-refactor analyzer, kept verbatim in
// behavior — every randomized graph is a full deep copy with freshly
// owned storage (TimeSeriesGraph::DeepCopy + in-place ReplaceFlows,
// exactly what the copying WithPermutedFlows did), every graph gets a
// fresh enumerator with no injected cache, and the ensemble is redrawn
// from the seed for every motif.
// ---------------------------------------------------------------------------

/// The copying WithPermutedFlows: collect flows in (pair, index) order,
/// shuffle the multiset, write back in the same order — consuming the
/// RNG stream exactly as the view-based implementation does.
TimeSeriesGraph ReferencePermutedCopy(const TimeSeriesGraph& graph,
                                      Rng* rng) {
  std::vector<Flow> all_flows;
  for (const TimeSeriesGraph::PairEdge& pe : graph.pairs()) {
    for (size_t i = 0; i < pe.series.size(); ++i) {
      all_flows.push_back(pe.series.flow(i));
    }
  }
  rng->Shuffle(&all_flows);

  TimeSeriesGraph out = graph.DeepCopy();
  size_t cursor = 0;
  for (int64_t p = 0; p < out.num_pairs(); ++p) {
    // The graph API is read-only; the reference mutates its own deep
    // copy in place through ReplaceFlows, so the const_cast strips only
    // the accessor's constness (the underlying object is non-const).
    const EdgeSeries& series = out.pair(static_cast<size_t>(p)).series;
    std::vector<Flow> new_flows(series.size());
    for (size_t i = 0; i < new_flows.size(); ++i) {
      new_flows[i] = all_flows[cursor++];
    }
    const_cast<EdgeSeries&>(series).ReplaceFlows(new_flows);
  }
  EXPECT_EQ(cursor, all_flows.size());
  return out;
}

SignificanceAnalyzer::MotifReport ReferenceAnalyze(
    const TimeSeriesGraph& graph, const Motif& motif,
    const SignificanceAnalyzer::Options& options) {
  SignificanceAnalyzer::MotifReport report;
  report.motif_name = motif.name();

  EnumerationOptions enum_options;
  enum_options.delta = options.delta;
  enum_options.phi = options.phi;

  std::vector<MatchBinding> matches;
  if (options.reuse_matches) {
    const StructuralMatcher matcher(graph, motif);
    matches = matcher.FindAllMatches();
  }

  Rng rng(options.seed);
  const auto count_on = [&](const TimeSeriesGraph& target) {
    FlowMotifEnumerator enumerator(target, motif, enum_options);
    return options.reuse_matches ? enumerator.RunOnMatches(matches)
                                 : enumerator.Run();
  };
  report.real_count = count_on(graph).num_instances;
  for (int i = 0; i < options.num_random_graphs; ++i) {
    const TimeSeriesGraph randomized = ReferencePermutedCopy(graph, &rng);
    report.random_counts.push_back(
        static_cast<double>(count_on(randomized).num_instances));
  }

  report.random_summary = Summarize(report.random_counts);
  report.z_score =
      ZScore(static_cast<double>(report.real_count), report.random_counts);
  report.p_value = EmpiricalPValue(static_cast<double>(report.real_count),
                                   report.random_counts);
  return report;
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

TimeSeriesGraph RandomGraph(uint64_t seed, int num_vertices,
                            int num_interactions, Timestamp time_span) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < num_interactions; ++i) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (dst == src) dst = (dst + 1) % num_vertices;
    const auto t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(time_span)));
    const Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(5));
    const Status s = g.AddEdge(src, dst, t, f);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return TimeSeriesGraph::Build(g);
}

void ExpectReportsEqual(const SignificanceAnalyzer::MotifReport& expected,
                        const SignificanceAnalyzer::MotifReport& actual,
                        const std::string& context) {
  EXPECT_EQ(expected.motif_name, actual.motif_name) << context;
  EXPECT_EQ(expected.real_count, actual.real_count) << context;
  EXPECT_EQ(expected.random_counts, actual.random_counts) << context;
  EXPECT_EQ(expected.z_score, actual.z_score) << context;
  EXPECT_EQ(expected.p_value, actual.p_value) << context;
  EXPECT_EQ(expected.random_summary.mean, actual.random_summary.mean)
      << context;
  EXPECT_EQ(expected.random_summary.stddev, actual.random_summary.stddev)
      << context;
}

SignificanceAnalyzer::Options BaseOptions(uint64_t seed) {
  SignificanceAnalyzer::Options options;
  options.num_random_graphs = 4;
  options.seed = seed * 31 + 5;
  options.delta = 8;
  options.phi = 3.0;
  return options;
}

// Every catalog motif on ~50 seeded random graphs, serial analyzer,
// reuse_matches on: the view-based ensemble must reproduce the copying
// reference bit for bit.
TEST(SignificanceEquivalenceTest, CatalogMotifsOnSeededGraphs) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const TimeSeriesGraph graph = RandomGraph(seed, 6, 60, 40);
    const SignificanceAnalyzer::Options options = BaseOptions(seed);
    const SignificanceAnalyzer analyzer(graph, options);
    for (const Motif& motif : MotifCatalog::All()) {
      ExpectReportsEqual(ReferenceAnalyze(graph, motif, options),
                         analyzer.Analyze(motif),
                         "seed=" + std::to_string(seed) +
                             " motif=" + motif.name());
    }
  }
}

// reuse_matches {on, off} x engine pools {1, 2, 4, 8}: the parallel
// path must equal the serial copying reference for interior and
// non-interior motifs alike (the cross-graph cache serves both).
TEST(SignificanceEquivalenceTest, ThreadAndReuseSweep) {
  const std::vector<Motif> motifs = {*MotifCatalog::ByName("M(3,3)"),
                                     *MotifCatalog::ByName("M(4,3)"),
                                     *MotifCatalog::ByName("M(5,4)"),
                                     *MotifCatalog::ByName("M(4,4)C")};
  for (uint64_t seed : {3u, 11u, 27u}) {
    const TimeSeriesGraph graph = RandomGraph(seed, 6, 70, 30);
    for (const bool reuse : {true, false}) {
      SignificanceAnalyzer::Options options = BaseOptions(seed);
      options.reuse_matches = reuse;
      for (const Motif& motif : motifs) {
        const SignificanceAnalyzer::MotifReport expected =
            ReferenceAnalyze(graph, motif, options);
        for (const int threads : {1, 2, 4, 8}) {
          ThreadPool pool(threads);
          options.pool = &pool;
          const SignificanceAnalyzer analyzer(graph, options);
          ExpectReportsEqual(expected, analyzer.Analyze(motif),
                             "seed=" + std::to_string(seed) +
                                 " motif=" + motif.name() +
                                 " reuse=" + std::to_string(reuse) +
                                 " threads=" + std::to_string(threads));
        }
        options.pool = nullptr;
      }
    }
  }
}

// AnalyzeAll shares one ensemble and one cache across motifs; each
// report must still equal the single-motif Analyze (and hence the
// reference), in any set order.
TEST(SignificanceEquivalenceTest, AnalyzeAllMatchesPerMotifAnalyze) {
  const TimeSeriesGraph graph = RandomGraph(17, 6, 80, 40);
  const SignificanceAnalyzer::Options options = BaseOptions(17);
  const SignificanceAnalyzer analyzer(graph, options);

  std::vector<Motif> motifs(MotifCatalog::All());
  const std::vector<SignificanceAnalyzer::MotifReport> forward =
      analyzer.AnalyzeAll(motifs);
  ASSERT_EQ(forward.size(), motifs.size());
  for (size_t i = 0; i < motifs.size(); ++i) {
    ExpectReportsEqual(ReferenceAnalyze(graph, motifs[i], options),
                       forward[i], "forward " + motifs[i].name());
  }

  std::vector<Motif> reversed(motifs.rbegin(), motifs.rend());
  const std::vector<SignificanceAnalyzer::MotifReport> backward =
      analyzer.AnalyzeAll(reversed);
  ASSERT_EQ(backward.size(), motifs.size());
  for (size_t i = 0; i < motifs.size(); ++i) {
    ExpectReportsEqual(forward[i], backward[motifs.size() - 1 - i],
                       "reversed " + motifs[i].name());
  }
}

// The three execution paths — skeleton replay (default), replay
// disabled, and replay requested but bypassed by a tiny trace budget —
// must all equal the copying reference, and the report must say which
// path ran.
TEST(SignificanceEquivalenceTest, ReplayOffAndForcedBypassMatchReference) {
  for (const uint64_t seed : {7u, 19u}) {
    const TimeSeriesGraph graph = RandomGraph(seed, 6, 70, 35);
    const SignificanceAnalyzer::Options base = BaseOptions(seed);
    const Motif motif = *MotifCatalog::ByName("M(4,3)");
    const SignificanceAnalyzer::MotifReport expected =
        ReferenceAnalyze(graph, motif, base);

    SignificanceAnalyzer::Options replay_on = base;
    const SignificanceAnalyzer with_replay(graph, replay_on);
    const SignificanceAnalyzer::MotifReport on_report =
        with_replay.Analyze(motif);
    ExpectReportsEqual(expected, on_report, "replay on");
    EXPECT_TRUE(on_report.used_skeleton_replay);
    EXPECT_GT(on_report.skeleton_edges, 0);

    SignificanceAnalyzer::Options replay_off = base;
    replay_off.skeleton_replay = false;
    const SignificanceAnalyzer without_replay(graph, replay_off);
    const SignificanceAnalyzer::MotifReport off_report =
        without_replay.Analyze(motif);
    ExpectReportsEqual(expected, off_report, "replay off");
    EXPECT_FALSE(off_report.used_skeleton_replay);
    EXPECT_EQ(off_report.skeleton_edges, 0);

    // Budget bypass: recording consults no RNG, so falling back after a
    // bypassed recording must leave the seeded stream — and the report —
    // exactly as skeleton_replay=false produces.
    SignificanceAnalyzer::Options bypass = base;
    bypass.max_skeleton_edges = 1;
    const SignificanceAnalyzer bypassed(graph, bypass);
    const SignificanceAnalyzer::MotifReport bypass_report =
        bypassed.Analyze(motif);
    ExpectReportsEqual(expected, bypass_report, "budget bypass");
    EXPECT_FALSE(bypass_report.used_skeleton_replay);

    // AnalyzeAll under a bypass budget takes its fallback lazily; the
    // reports must be unchanged.
    const std::vector<SignificanceAnalyzer::MotifReport> all =
        bypassed.AnalyzeAll({motif});
    ASSERT_EQ(all.size(), 1u);
    ExpectReportsEqual(expected, all[0], "AnalyzeAll budget bypass");
  }
}

// Degenerate shapes: delta = 0 windows, duplicate timestamps, phi = 0
// (permutation cannot change counts at all), single-interaction series.
TEST(SignificanceEquivalenceTest, DegenerateInputs) {
  const TimeSeriesGraph dup = testing_util::MakeGraph({
      {0, 1, 5, 2.0}, {0, 1, 5, 3.0}, {1, 2, 5, 1.0}, {1, 2, 7, 4.0},
      {2, 0, 5, 2.0}, {2, 0, 9, 1.0}, {2, 3, 9, 5.0},
  });
  for (const Timestamp delta : {Timestamp{0}, Timestamp{4}}) {
    for (const Flow phi : {0.0, 2.5}) {
      SignificanceAnalyzer::Options options;
      options.num_random_graphs = 5;
      options.seed = 99;
      options.delta = delta;
      options.phi = phi;
      const SignificanceAnalyzer analyzer(dup, options);
      for (const char* name : {"M(3,2)", "M(3,3)", "M(4,3)"}) {
        const Motif motif = *MotifCatalog::ByName(name);
        ExpectReportsEqual(ReferenceAnalyze(dup, motif, options),
                           analyzer.Analyze(motif),
                           std::string(name) + " delta=" +
                               std::to_string(delta) +
                               " phi=" + std::to_string(phi));
      }
    }
  }
}

}  // namespace
}  // namespace flowmotif
