// Tests for the Sec. 7 generalization: motifs whose label-ordered edges
// form forks and joins instead of a spanning path. Temporal semantics:
// interactions of edge i strictly precede interactions of edge i+1.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/counter.h"
#include "core/enumerator.h"
#include "core/instance.h"
#include "core/motif.h"
#include "core/structural_match.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;

Motif FanOut2() {
  return *Motif::FromEdgeList({{0, 1}, {0, 2}}, "FanOut2");
}
Motif FanIn2() {
  return *Motif::FromEdgeList({{0, 2}, {1, 2}}, "FanIn2");
}
Motif Diamond() {
  return *Motif::FromEdgeList({{0, 1}, {0, 2}, {1, 3}, {2, 3}}, "Diamond");
}

TEST(GeneralMotifTest, FromEdgeListBasics) {
  Motif fan = FanOut2();
  EXPECT_EQ(fan.num_nodes(), 3);
  EXPECT_EQ(fan.num_edges(), 2);
  EXPECT_FALSE(fan.is_path());
  EXPECT_FALSE(fan.HasCycle());
  EXPECT_EQ(fan.PathString(), "0>1,0>2");
}

TEST(GeneralMotifTest, EdgeListThatChainsIsAPath) {
  StatusOr<Motif> m = Motif::FromEdgeList({{0, 1}, {1, 2}, {2, 0}});
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->is_path());
  EXPECT_EQ(m->PathString(), "0-1-2-0");
  EXPECT_EQ(*m, *Motif::FromSpanningPath({0, 1, 2, 0}));
}

TEST(GeneralMotifTest, ValidationRejectsBadShapes) {
  EXPECT_FALSE(Motif::FromEdgeList({}).ok());
  EXPECT_FALSE(Motif::FromEdgeList({{0, 0}}).ok());            // self loop
  EXPECT_FALSE(Motif::FromEdgeList({{0, 1}, {0, 1}}).ok());    // repeat
  EXPECT_FALSE(Motif::FromEdgeList({{0, 1}, {2, 3}}).ok());    // disconnected
  EXPECT_FALSE(Motif::FromEdgeList({{0, 2}}).ok());            // sparse ids
}

TEST(GeneralMotifTest, ParseEdgeListNotation) {
  StatusOr<Motif> m = Motif::Parse("0>1,0>2");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m, FanOut2());
  EXPECT_FALSE(Motif::Parse("0>").ok());
  EXPECT_FALSE(Motif::Parse(">1").ok());
  EXPECT_FALSE(Motif::Parse("0>x").ok());
}

TEST(GeneralMotifTest, HasCycleOnGeneralShapes) {
  EXPECT_FALSE(Diamond().HasCycle());
  StatusOr<Motif> looped =
      Motif::FromEdgeList({{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  ASSERT_TRUE(looped.ok());
  EXPECT_TRUE(looped->HasCycle());
}

TEST(GeneralMotifMatchTest, LabelOrderBindingFreshWeakComponent) {
  // Edge 2>3 is reached while motif nodes 2 and 3 are both unbound: the
  // label order visits a new weak component before edge 1>2 links it,
  // which exerces GeneralDfs's pair-table scan branch mid-search (not
  // just at the first edge).
  StatusOr<Motif> fresh = Motif::FromEdgeList({{0, 1}, {2, 3}, {1, 2}},
                                              "FreshComponent");
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ASSERT_FALSE(fresh->is_path());

  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0},
                                 {1, 2, 2, 1.0},
                                 {2, 3, 3, 1.0},
                                 {0, 3, 4, 1.0}});
  StructuralMatcher matcher(g, *fresh);
  std::vector<MatchBinding> matches = matcher.FindAllMatches();
  // The only injective binding with all three pair edges present is the
  // identity: 0->1 (edge 1), 2->3 (edge 2), 1->2 (edge 3).
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (MatchBinding{0, 1, 2, 3}));
  EXPECT_TRUE(matcher.IsMatch(matches[0]));
  EXPECT_EQ(matcher.CountMatches(), 1);

  // The per-first-edge work-unit decomposition must reproduce the same
  // list for the mid-search fresh-component branch too.
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(matcher.FindAllMatchesParallel(&pool), matches)
        << "threads=" << threads;
  }
}

TEST(GeneralMotifMatchTest, FreshComponentScanSkipsBoundVertices) {
  // Two candidate pairs for the fresh edge 2>3; the one overlapping the
  // already-bound vertices must be rejected by the injectivity scan.
  StatusOr<Motif> fresh = Motif::FromEdgeList({{0, 1}, {2, 3}, {1, 2}},
                                              "FreshComponent");
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0},
                                 {1, 0, 2, 1.0},   // overlaps bound 0,1
                                 {1, 2, 2, 1.0},
                                 {2, 3, 3, 1.0},
                                 {3, 1, 4, 1.0}});
  StructuralMatcher matcher(g, *fresh);
  for (const MatchBinding& m : matcher.FindAllMatches()) {
    std::set<VertexId> distinct(m.begin(), m.end());
    EXPECT_EQ(distinct.size(), m.size()) << "non-injective binding";
    EXPECT_TRUE(matcher.IsMatch(m));
  }
}

TEST(GeneralMotifMatchTest, FanOutBindsTargetsInjectively) {
  // 0 -> {1, 2, 3}: fan-out matches choose ordered pairs of distinct
  // targets: 3 * 2 = 6.
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0},
                                 {0, 2, 2, 1.0},
                                 {0, 3, 3, 1.0}});
  StructuralMatcher matcher(g, FanOut2());
  std::vector<MatchBinding> matches = matcher.FindAllMatches();
  EXPECT_EQ(matches.size(), 6u);
  for (const MatchBinding& m : matches) {
    EXPECT_EQ(m[0], 0);
    EXPECT_NE(m[1], m[2]);
  }
}

TEST(GeneralMotifMatchTest, FanInUsesReverseAdjacency) {
  // {0, 1, 2} -> 3: fan-in matches: 3 * 2 = 6.
  TimeSeriesGraph g = MakeGraph({{0, 3, 1, 1.0},
                                 {1, 3, 2, 1.0},
                                 {2, 3, 3, 1.0}});
  StructuralMatcher matcher(g, FanIn2());
  std::vector<MatchBinding> matches = matcher.FindAllMatches();
  EXPECT_EQ(matches.size(), 6u);
  for (const MatchBinding& m : matches) {
    EXPECT_EQ(m[2], 3);
    EXPECT_NE(m[0], m[1]);
  }
}

TEST(GeneralMotifMatchTest, DiamondMatch) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0},
                                 {0, 2, 2, 1.0},
                                 {1, 3, 3, 1.0},
                                 {2, 3, 4, 1.0}});
  StructuralMatcher matcher(g, Diamond());
  std::vector<MatchBinding> matches = matcher.FindAllMatches();
  // Two matches: (1,2) and (2,1) as the middle layer... but edge labels
  // fix which middle node is hit first: (0,1,2,3) needs 0->1,0->2,1->3,
  // 2->3 (all present) and (0,2,1,3) needs 0->2,0->1,2->3,1->3 (also all
  // present) -> 2 matches.
  EXPECT_EQ(matches.size(), 2u);
}

TEST(GeneralMotifMatchTest, PathAsEdgeListAgreesWithPathMatcher) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  Motif path_motif = *Motif::FromSpanningPath({0, 1, 2, 0});
  Motif general = *Motif::FromEdgeList({{0, 1}, {1, 2}, {2, 0}});
  std::vector<MatchBinding> a =
      StructuralMatcher(g, path_motif).FindAllMatches();
  std::vector<MatchBinding> b =
      StructuralMatcher(g, general).FindAllMatches();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(GeneralMotifEnumerationTest, FanOutInstancesRespectLabelOrder) {
  // 0->1 at t=10 and t=30; 0->2 at t=20. Two structural matches exist:
  // targets (1,2) gives e1={10} (the t=30 element would break the label
  // order), e2={20}; the swapped match (2,1) gives e1={20}, e2={30}.
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 5.0},
                                 {0, 1, 30, 5.0},
                                 {0, 2, 20, 4.0}});
  EnumerationOptions options;
  options.delta = 100;
  options.phi = 0.0;
  FlowMotifEnumerator enumerator(g, FanOut2(), options);
  std::vector<MotifInstance> instances;
  enumerator.Run([&](const InstanceView& view) {
    instances.push_back(view.Materialize());
    return true;
  });
  std::sort(instances.begin(), instances.end());
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].binding, (MatchBinding{0, 1, 2}));
  EXPECT_EQ(instances[0].edge_sets[0],
            (std::vector<Interaction>{{10, 5.0}}));
  EXPECT_EQ(instances[0].edge_sets[1],
            (std::vector<Interaction>{{20, 4.0}}));
  EXPECT_EQ(instances[1].binding, (MatchBinding{0, 2, 1}));
  EXPECT_EQ(instances[1].edge_sets[0],
            (std::vector<Interaction>{{20, 4.0}}));
  EXPECT_EQ(instances[1].edge_sets[1],
            (std::vector<Interaction>{{30, 5.0}}));
}

TEST(GeneralMotifEnumerationTest, InstancesAreValid) {
  // A denser fan graph; every emitted instance must satisfy the general
  // validity conditions (strict separation between consecutive labels).
  TimeSeriesGraph g = MakeGraph({
      {0, 1, 10, 2.0}, {0, 1, 12, 3.0}, {0, 1, 40, 1.0},
      {0, 2, 15, 4.0}, {0, 2, 18, 1.0}, {0, 2, 45, 2.0},
      {0, 3, 20, 6.0},
  });
  EnumerationOptions options;
  options.delta = 50;
  options.phi = 2.0;
  FlowMotifEnumerator enumerator(g, FanOut2(), options);
  int64_t count = 0;
  enumerator.Run([&](const InstanceView& view) {
    ++count;
    MotifInstance instance = view.Materialize();
    Status s = ValidateInstance(g, FanOut2(), instance, options.delta,
                                options.phi);
    EXPECT_TRUE(s.ok()) << s << " " << instance.ToString();
    return true;
  });
  EXPECT_GT(count, 0);
}

TEST(GeneralMotifEnumerationTest, CounterAgreesOnGeneralMotifs) {
  TimeSeriesGraph g = MakeGraph({
      {0, 1, 10, 2.0}, {0, 1, 12, 3.0}, {0, 2, 15, 4.0},
      {0, 2, 18, 1.0}, {1, 3, 20, 6.0}, {2, 3, 25, 2.0},
      {0, 3, 30, 1.0},
  });
  for (const Motif& motif : {FanOut2(), FanIn2(), Diamond()}) {
    EnumerationOptions options;
    options.delta = 40;
    options.phi = 0.0;
    int64_t enumerated =
        FlowMotifEnumerator(g, motif, options).Run().num_instances;
    InstanceCounter counter(g, motif, options.delta, options.phi);
    EXPECT_EQ(counter.Run().num_instances, enumerated) << motif.name();
  }
}

TEST(GeneralMotifEnumerationTest, SmurfingFanOutScenario) {
  // The paper's FIU motivation: one account splits a large amount to two
  // mules within minutes. phi forces the aggregate per edge to be large.
  TimeSeriesGraph g = MakeGraph({
      {0, 1, 100, 9.0}, {0, 1, 160, 8.0},   // mule 1, two small payments
      {0, 2, 200, 9.5}, {0, 2, 230, 8.5},   // mule 2
      {0, 1, 5000, 1.0},                    // unrelated later payment
  });
  EnumerationOptions options;
  options.delta = 300;
  options.phi = 15.0;  // only aggregated pairs of payments qualify
  FlowMotifEnumerator enumerator(g, FanOut2(), options);
  std::vector<MotifInstance> instances;
  enumerator.Run([&](const InstanceView& view) {
    instances.push_back(view.Materialize());
    return true;
  });
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].edge_sets[0].size(), 2u);  // both mule-1 payments
  EXPECT_EQ(instances[0].edge_sets[1].size(), 2u);  // both mule-2 payments
  EXPECT_DOUBLE_EQ(instances[0].InstanceFlow(), 17.0);
}

}  // namespace
}  // namespace flowmotif
