#include "core/instance.h"

#include <gtest/gtest.h>

#include "core/motif.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig2Graph;

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)"); }

/// The maximal instance of Fig. 4(a): node0->u3, node1->u1, node2->u2.
MotifInstance Fig4aInstance() {
  MotifInstance instance;
  instance.binding = {2, 0, 1};  // u3, u1, u2
  instance.edge_sets = {
      {{10, 10.0}},             // e1: u3->u1
      {{13, 5.0}, {15, 7.0}},   // e2: u1->u2
      {{18, 20.0}},             // e3: u2->u3
  };
  return instance;
}

/// The non-maximal variant of Fig. 4(b): (13,5) missing from e2.
MotifInstance Fig4bInstance() {
  MotifInstance instance = Fig4aInstance();
  instance.edge_sets[1] = {{15, 7.0}};
  return instance;
}

TEST(MotifInstanceTest, InstanceFlowIsMinEdgeSum) {
  MotifInstance instance = Fig4aInstance();
  // Aggregated flows: 10, 12, 20 -> f(GI) = 10 (Eq. 1).
  EXPECT_DOUBLE_EQ(instance.InstanceFlow(), 10.0);
}

TEST(MotifInstanceTest, SpanAndTimes) {
  MotifInstance instance = Fig4aInstance();
  EXPECT_EQ(instance.StartTime(), 10);
  EXPECT_EQ(instance.EndTime(), 18);
  EXPECT_EQ(instance.Span(), 8);
}

TEST(MotifInstanceTest, ToStringRendersEdgeSets) {
  std::string s = Fig4aInstance().ToString();
  EXPECT_NE(s.find("e1 <- {(10,10)}"), std::string::npos);
  EXPECT_NE(s.find("e2 <- {(13,5),(15,7)}"), std::string::npos);
}

TEST(ValidateInstanceTest, Fig4aIsValid) {
  // Paper parameters: delta = 10, phi = 7.
  Status s = ValidateInstance(PaperFig2Graph(), M33(), Fig4aInstance(), 10,
                              7.0);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(ValidateInstanceTest, Fig4bIsAlsoValidJustNotMaximal) {
  Status s = ValidateInstance(PaperFig2Graph(), M33(), Fig4bInstance(), 10,
                              7.0);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(ValidateInstanceTest, RejectsWrongBindingSize) {
  MotifInstance instance = Fig4aInstance();
  instance.binding = {2, 0};
  EXPECT_FALSE(
      ValidateInstance(PaperFig2Graph(), M33(), instance, 10, 7.0).ok());
}

TEST(ValidateInstanceTest, RejectsNonInjectiveBinding) {
  MotifInstance instance = Fig4aInstance();
  instance.binding = {2, 0, 2};
  EXPECT_FALSE(
      ValidateInstance(PaperFig2Graph(), M33(), instance, 10, 7.0).ok());
}

TEST(ValidateInstanceTest, RejectsEmptyEdgeSet) {
  MotifInstance instance = Fig4aInstance();
  instance.edge_sets[1].clear();
  EXPECT_FALSE(
      ValidateInstance(PaperFig2Graph(), M33(), instance, 10, 7.0).ok());
}

TEST(ValidateInstanceTest, RejectsElementsNotInSeries) {
  MotifInstance instance = Fig4aInstance();
  instance.edge_sets[0] = {{10, 99.0}};  // flow value not in series
  EXPECT_FALSE(
      ValidateInstance(PaperFig2Graph(), M33(), instance, 10, 7.0).ok());
}

TEST(ValidateInstanceTest, RejectsMissingGraphEdge) {
  MotifInstance instance = Fig4aInstance();
  instance.binding = {0, 1, 2};  // u1->u2 ok, u2->u3 ok, u3->u1 ok... but
  // with this rotation e1 = u1->u2, e2 = u2->u3, e3 = u3->u1; the sets
  // below don't match those series.
  instance.edge_sets = {
      {{10, 10.0}},  // u1->u2 has no (10,10)
      {{13, 5.0}},
      {{18, 20.0}},
  };
  EXPECT_FALSE(
      ValidateInstance(PaperFig2Graph(), M33(), instance, 10, 7.0).ok());
}

TEST(ValidateInstanceTest, RejectsTimeOrderViolation) {
  // e1 later than e2: on the chain u4->u1->u2, put e1 at (3,5) but e2's
  // set before it in time — impossible with real series, so build one
  // where both edges have overlapping times.
  TimeSeriesGraph g = testing_util::MakeGraph({
      {0, 1, 10, 5.0},
      {0, 1, 20, 5.0},
      {1, 2, 15, 5.0},
  });
  Motif chain = *Motif::FromSpanningPath({0, 1, 2});
  MotifInstance bad;
  bad.binding = {0, 1, 2};
  bad.edge_sets = {{{10, 5.0}, {20, 5.0}}, {{15, 5.0}}};
  // e1's last element (20) is after e2's first (15): not time-respecting.
  EXPECT_FALSE(ValidateInstance(g, chain, bad, 20, 0.0).ok());

  MotifInstance good = bad;
  good.edge_sets[0] = {{10, 5.0}};
  EXPECT_TRUE(ValidateInstance(g, chain, good, 20, 0.0).ok());
}

TEST(ValidateInstanceTest, RejectsNonSeparatedConsecutiveSets) {
  // Use a graph where two edges share a timestamp.
  TimeSeriesGraph g = testing_util::MakeGraph({
      {0, 1, 10, 5.0},
      {1, 2, 10, 5.0},  // same timestamp as e1's element
      {1, 2, 12, 5.0},
  });
  Motif chain = *Motif::FromSpanningPath({0, 1, 2});
  MotifInstance instance;
  instance.binding = {0, 1, 2};
  instance.edge_sets = {{{10, 5.0}}, {{10, 5.0}}};
  EXPECT_FALSE(ValidateInstance(g, chain, instance, 10, 0.0).ok());
  instance.edge_sets = {{{10, 5.0}}, {{12, 5.0}}};
  EXPECT_TRUE(ValidateInstance(g, chain, instance, 10, 0.0).ok());
}

TEST(ValidateInstanceTest, RejectsDeltaViolation) {
  MotifInstance instance = Fig4aInstance();  // span 8
  EXPECT_FALSE(
      ValidateInstance(PaperFig2Graph(), M33(), instance, 7, 7.0).ok());
  EXPECT_TRUE(
      ValidateInstance(PaperFig2Graph(), M33(), instance, 8, 7.0).ok());
}

TEST(ValidateInstanceTest, RejectsPhiViolation) {
  MotifInstance instance = Fig4aInstance();  // min edge flow 10
  EXPECT_FALSE(
      ValidateInstance(PaperFig2Graph(), M33(), instance, 10, 10.5).ok());
  EXPECT_TRUE(
      ValidateInstance(PaperFig2Graph(), M33(), instance, 10, 10.0).ok());
}

TEST(IsMaximalTest, Fig4aIsMaximal) {
  EXPECT_TRUE(
      IsMaximalInstance(PaperFig2Graph(), M33(), Fig4aInstance(), 10));
}

TEST(IsMaximalTest, Fig4bIsNotMaximal) {
  // Adding (13,5) to e2 yields the valid Fig. 4(a) instance.
  EXPECT_FALSE(
      IsMaximalInstance(PaperFig2Graph(), M33(), Fig4bInstance(), 10));
}

TEST(IsMaximalTest, DeltaBlocksExtension) {
  // With delta = 5 the Fig. 4(b) instance spans [15, 18]... wait, e1 is
  // at 10, so span is 8 > 5; craft a tighter example instead: an
  // instance on the second triangle.
  MotifInstance instance;
  instance.binding = {1, 2, 3};  // u2, u3, u4
  instance.edge_sets = {
      {{18, 20.0}},            // u2->u3
      {{19, 5.0}},             // u3->u4: (21,4) also exists
      {{23, 7.0}},             // u4->u2
  };
  // Span is 5. With delta = 10, (21,4) can be added to e2 -> not maximal.
  EXPECT_FALSE(IsMaximalInstance(PaperFig2Graph(), M33(), instance, 10));
  // With delta = 5 adding (21,4) keeps span 5 <= 5? Span stays 23-18=5,
  // so it is still addable; the instance remains non-maximal.
  EXPECT_FALSE(IsMaximalInstance(PaperFig2Graph(), M33(), instance, 5));
  // Including (21,4) makes it maximal.
  instance.edge_sets[1] = {{19, 5.0}, {21, 4.0}};
  EXPECT_TRUE(IsMaximalInstance(PaperFig2Graph(), M33(), instance, 10));
}

TEST(IsMaximalTest, OrderBlocksExtension) {
  // e2 = {(15,7)} with e3 at 18: (13,5) is before e3 and after e1(10),
  // so it is addable -> non-maximal. If e1 were at 14, (13,5) would
  // violate order and the instance would be maximal.
  TimeSeriesGraph g = testing_util::MakeGraph({
      {2, 0, 14, 10.0},
      {0, 1, 13, 5.0},
      {0, 1, 15, 7.0},
      {1, 2, 18, 20.0},
  });
  MotifInstance instance;
  instance.binding = {2, 0, 1};
  instance.edge_sets = {{{14, 10.0}}, {{15, 7.0}}, {{18, 20.0}}};
  EXPECT_TRUE(IsMaximalInstance(g, M33(), instance, 10));
}

TEST(MotifInstanceTest, OrderingAndEquality) {
  MotifInstance a = Fig4aInstance();
  MotifInstance b = Fig4aInstance();
  EXPECT_EQ(a, b);
  MotifInstance c = Fig4bInstance();
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(c < a || a < c);
}

}  // namespace
}  // namespace flowmotif
