#include "engine/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/counter.h"
#include "core/dp.h"
#include "core/enumerator.h"
#include "core/significance.h"
#include "core/topk.h"
#include "test_util.h"

namespace flowmotif {
namespace {

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}); }

QueryOptions BaseOptions(QueryMode mode, Timestamp delta, Flow phi) {
  QueryOptions options;
  options.mode = mode;
  options.delta = delta;
  options.phi = phi;
  return options;
}

TEST(QueryEngineTest, EnumerateAgreesWithEnumerator) {
  const TimeSeriesGraph g = testing_util::PaperFig2Graph();
  const QueryEngine engine(g);
  QueryOptions options = BaseOptions(QueryMode::kEnumerate, 10, 5.0);
  options.collect_limit = -1;
  const QueryResult result = engine.Run(M33(), options);

  EnumerationOptions eopts;
  eopts.delta = 10;
  eopts.phi = 5.0;
  const FlowMotifEnumerator enumerator(g, M33(), eopts);
  const EnumerationResult direct = enumerator.Run();
  std::vector<MotifInstance> direct_instances = enumerator.CollectAll();

  EXPECT_EQ(result.stats.num_instances, direct.num_instances);
  EXPECT_EQ(result.stats.num_structural_matches,
            direct.num_structural_matches);
  EXPECT_EQ(result.stats.num_windows_processed,
            direct.num_windows_processed);
  EXPECT_EQ(result.stats.num_phi_prunes, direct.num_phi_prunes);
  EXPECT_EQ(result.stats.num_domination_skips, direct.num_domination_skips);
  EXPECT_EQ(result.instances, direct_instances);
  EXPECT_EQ(result.mode, QueryMode::kEnumerate);
  EXPECT_EQ(result.threads_used, 1);
}

TEST(QueryEngineTest, EnumerateCollectLimitTruncates) {
  const TimeSeriesGraph g = testing_util::PaperFig7Graph();
  const QueryEngine engine(g);

  QueryOptions all = BaseOptions(QueryMode::kEnumerate, 10, 0.0);
  all.collect_limit = -1;
  const QueryResult everything = engine.Run(M33(), all);
  ASSERT_GT(everything.instances.size(), 1u);

  QueryOptions limited = all;
  limited.collect_limit = 1;
  const QueryResult first = engine.Run(M33(), limited);
  ASSERT_EQ(first.instances.size(), 1u);
  EXPECT_EQ(first.instances[0], everything.instances[0]);
  // Counters are unaffected by the collection limit.
  EXPECT_EQ(first.stats.num_instances, everything.stats.num_instances);

  QueryOptions none = all;
  none.collect_limit = 0;
  const QueryResult counted = engine.Run(M33(), none);
  EXPECT_TRUE(counted.instances.empty());
  EXPECT_EQ(counted.stats.num_instances, everything.stats.num_instances);
}

TEST(QueryEngineTest, CountAgreesWithInstanceCounter) {
  const TimeSeriesGraph g = testing_util::PaperFig2Graph();
  const QueryEngine engine(g);
  const QueryResult result =
      engine.Run(M33(), BaseOptions(QueryMode::kCount, 10, 5.0));

  const InstanceCounter counter(g, M33(), 10, 5.0);
  const InstanceCounter::Result direct = counter.Run();
  EXPECT_EQ(result.stats.num_instances, direct.num_instances);
  EXPECT_EQ(result.stats.num_structural_matches,
            direct.num_structural_matches);
  EXPECT_EQ(result.stats.num_windows_processed, direct.num_windows);
  EXPECT_EQ(result.memo_hits, direct.memo_hits);
}

TEST(QueryEngineTest, CountAgreesWithEnumerateMode) {
  const TimeSeriesGraph g = testing_util::PaperFig7Graph();
  const QueryEngine engine(g);
  const QueryResult counted =
      engine.Run(M33(), BaseOptions(QueryMode::kCount, 12, 3.0));
  const QueryResult enumerated =
      engine.Run(M33(), BaseOptions(QueryMode::kEnumerate, 12, 3.0));
  EXPECT_EQ(counted.stats.num_instances, enumerated.stats.num_instances);
}

TEST(QueryEngineTest, TopKAgreesWithTopKSearcher) {
  const TimeSeriesGraph g = testing_util::PaperFig2Graph();
  const QueryEngine engine(g);
  QueryOptions options = BaseOptions(QueryMode::kTopK, 10, 0.0);
  options.k = 3;
  const QueryResult result = engine.Run(M33(), options);

  const TopKSearcher searcher(g, M33(), 10, 3);
  const TopKSearcher::Result direct = searcher.Run();
  ASSERT_EQ(result.topk.size(), direct.entries.size());
  for (size_t i = 0; i < result.topk.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.topk[i].flow, direct.entries[i].flow) << i;
    EXPECT_EQ(result.topk[i].instance, direct.entries[i].instance) << i;
  }
}

TEST(QueryEngineTest, Top1AgreesWithDpSearcher) {
  const TimeSeriesGraph g = testing_util::PaperFig2Graph();
  const QueryEngine engine(g);
  const QueryResult result =
      engine.Run(M33(), BaseOptions(QueryMode::kTop1, 10, 0.0));

  const MaxFlowDpSearcher searcher(g, M33(), 10);
  const MaxFlowDpSearcher::Result direct = searcher.Run();
  ASSERT_EQ(result.top1.found, direct.found);
  if (direct.found) {
    EXPECT_DOUBLE_EQ(result.top1.max_flow, direct.max_flow);
    EXPECT_EQ(result.top1.best, direct.best);
    EXPECT_EQ(result.top1.binding, direct.binding);
  }
  EXPECT_EQ(result.stats.num_windows_processed, direct.num_windows);
}

TEST(QueryEngineTest, Top1MatchesTopKWinner) {
  const TimeSeriesGraph g = testing_util::PaperFig7Graph();
  const QueryEngine engine(g);
  QueryOptions topk = BaseOptions(QueryMode::kTopK, 10, 0.0);
  topk.k = 1;
  const QueryResult k1 = engine.Run(M33(), topk);
  const QueryResult top1 =
      engine.Run(M33(), BaseOptions(QueryMode::kTop1, 10, 0.0));
  ASSERT_FALSE(k1.topk.empty());
  ASSERT_TRUE(top1.top1.found);
  EXPECT_DOUBLE_EQ(k1.topk[0].flow, top1.top1.max_flow);
}

TEST(QueryEngineTest, SignificanceAgreesWithAnalyzer) {
  const TimeSeriesGraph g = testing_util::PaperFig2Graph();
  const QueryEngine engine(g);
  QueryOptions options = BaseOptions(QueryMode::kSignificance, 10, 5.0);
  options.num_random_graphs = 5;
  options.seed = 7;
  const QueryResult result = engine.Run(M33(), options);

  SignificanceAnalyzer::Options sopts;
  sopts.num_random_graphs = 5;
  sopts.seed = 7;
  sopts.delta = 10;
  sopts.phi = 5.0;
  const SignificanceAnalyzer analyzer(g, sopts);
  const SignificanceAnalyzer::MotifReport direct = analyzer.Analyze(M33());

  EXPECT_EQ(result.significance.real_count, direct.real_count);
  EXPECT_EQ(result.significance.random_counts, direct.random_counts);
  EXPECT_DOUBLE_EQ(result.significance.z_score, direct.z_score);
  EXPECT_DOUBLE_EQ(result.significance.p_value, direct.p_value);
  EXPECT_EQ(result.stats.num_instances, direct.real_count);
}

TEST(QueryEngineTest, RunOnMatchesAgreesWithRun) {
  const TimeSeriesGraph g = testing_util::PaperFig2Graph();
  const QueryEngine engine(g);
  const std::vector<MatchBinding> matches =
      StructuralMatcher(g, M33()).FindAllMatches();

  for (QueryMode mode :
       {QueryMode::kEnumerate, QueryMode::kCount, QueryMode::kTopK,
        QueryMode::kTop1}) {
    QueryOptions options = BaseOptions(mode, 10, 5.0);
    if (mode == QueryMode::kTopK) options.phi = 0.0;
    const QueryResult via_run = engine.Run(M33(), options);
    const QueryResult via_matches =
        engine.RunOnMatches(M33(), matches, options);
    EXPECT_EQ(via_matches.stats.num_instances, via_run.stats.num_instances)
        << static_cast<int>(mode);
    EXPECT_EQ(via_matches.stats.num_structural_matches,
              via_run.stats.num_structural_matches);
  }
}

TEST(QueryEngineTest, ZeroThreadsMeansHardwareParallelism) {
  const TimeSeriesGraph g = testing_util::PaperFig2Graph();
  const QueryEngine engine(g);
  QueryOptions options = BaseOptions(QueryMode::kCount, 10, 5.0);
  options.num_threads = 0;
  const QueryResult result = engine.Run(M33(), options);
  EXPECT_EQ(result.threads_used, ThreadPool::DefaultParallelism());
}

TEST(QueryEngineTest, EmptyGraphNoMatches) {
  const TimeSeriesGraph g = testing_util::MakeGraph({{0, 1, 5, 1.0}});
  const QueryEngine engine(g);
  QueryOptions options = BaseOptions(QueryMode::kEnumerate, 10, 0.0);
  options.num_threads = 4;
  const QueryResult result = engine.Run(M33(), options);
  EXPECT_EQ(result.stats.num_instances, 0);
  EXPECT_EQ(result.stats.num_structural_matches, 0);
  EXPECT_EQ(result.num_batches, 0);
}

TEST(QueryEngineTest, ZeroMatchGraphThroughEveryMode) {
  // A single edge can never back M(3,3): the match list is empty, so
  // every mode — serial, parallel-barrier, and streamed alike — must
  // come back clean instead of tripping over zero-size partitions.
  const TimeSeriesGraph g = testing_util::MakeGraph({{0, 1, 5, 1.0}});
  const QueryEngine engine(g);
  for (int threads : {1, 4}) {
    for (QueryMode mode :
         {QueryMode::kEnumerate, QueryMode::kCount, QueryMode::kTopK,
          QueryMode::kTop1, QueryMode::kSignificance}) {
      QueryOptions options = BaseOptions(mode, 10, 0.0);
      options.num_threads = threads;
      options.collect_limit = mode == QueryMode::kEnumerate ? -1 : 0;
      options.num_random_graphs = 3;
      const QueryResult result = engine.Run(M33(), options);
      EXPECT_EQ(result.stats.num_instances, 0)
          << "mode=" << static_cast<int>(mode) << " threads=" << threads;
      EXPECT_TRUE(result.instances.empty());
      EXPECT_TRUE(result.topk.empty());
      EXPECT_FALSE(result.top1.found);
      if (mode == QueryMode::kSignificance) {
        EXPECT_EQ(result.significance.real_count, 0);
      }
    }
  }
}

TEST(QueryEngineTest, StreamedEnumerateMatchesBarrierCounters) {
  // collect_limit == 0 takes the streamed P1→P2 pipeline when threads
  // > 1; collect_limit == -1 takes the barrier path. Their shared
  // counters must agree.
  const TimeSeriesGraph g = testing_util::PaperFig2Graph();
  const QueryEngine engine(g);
  QueryOptions barrier = BaseOptions(QueryMode::kEnumerate, 10, 0.0);
  barrier.num_threads = 4;
  barrier.collect_limit = -1;
  const QueryResult from_barrier = engine.Run(M33(), barrier);

  QueryOptions streamed = barrier;
  streamed.collect_limit = 0;
  const QueryResult from_stream = engine.Run(M33(), streamed);
  EXPECT_EQ(from_stream.stats.num_instances,
            from_barrier.stats.num_instances);
  EXPECT_EQ(from_stream.stats.num_structural_matches,
            from_barrier.stats.num_structural_matches);
  EXPECT_EQ(from_stream.stats.num_windows_processed,
            from_barrier.stats.num_windows_processed);
  EXPECT_TRUE(from_stream.instances.empty());
}

}  // namespace
}  // namespace flowmotif
