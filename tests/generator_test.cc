#include "gen/generator.h"

#include <gtest/gtest.h>

#include "gen/bitcoin_gen.h"
#include "gen/facebook_gen.h"
#include "gen/passenger_gen.h"
#include "graph/time_series_graph.h"

namespace flowmotif {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_vertices = 300;
  config.num_pairs = 900;
  config.num_interactions = 4000;
  config.time_span = 86400 * 7;
  config.cascade_gap_mean = 60;
  config.seed = 5;
  return config;
}

TEST(TopologyTest, AddPairDedupesAndSkipsSelfLoops) {
  Topology t(4);
  EXPECT_TRUE(t.AddPair(0, 1));
  EXPECT_FALSE(t.AddPair(0, 1));  // duplicate
  EXPECT_FALSE(t.AddPair(2, 2));  // self loop
  EXPECT_TRUE(t.AddPair(1, 0));   // reverse direction is distinct
  EXPECT_EQ(t.num_pairs(), 2);
  EXPECT_TRUE(t.HasPair(0, 1));
  EXPECT_FALSE(t.HasPair(0, 2));
  EXPECT_EQ(t.OutNeighbors(0).size(), 1u);
}

TEST(TopologyTest, CyclePocketsAddClosedCycles) {
  Topology t(50);
  Rng rng(3);
  AddCyclePockets(&t, 5, 3, &rng);
  // Every added pocket contributes a directed 3-cycle: follow each pair
  // around. There should be pairs, and for at least one vertex v with an
  // out-neighbor w, a 2-hop return path exists.
  EXPECT_GT(t.num_pairs(), 0);
  bool found_triangle = false;
  for (const auto& [u, v] : t.pairs()) {
    for (VertexId w : t.OutNeighbors(v)) {
      if (t.HasPair(w, u)) found_triangle = true;
    }
  }
  EXPECT_TRUE(found_triangle);
}

TEST(EmitInteractionsTest, RespectsConfigCounts) {
  Topology t(20);
  Rng rng(1);
  for (VertexId i = 0; i < 19; ++i) t.AddPair(i, i + 1);
  GeneratorConfig config = SmallConfig();
  config.num_vertices = 20;
  config.num_interactions = 500;
  InteractionGraph g = EmitInteractions(
      t, config, [](Rng*) { return 1.0; },
      UniformTimeSampler(config.time_span), &rng);
  EXPECT_GE(g.num_interactions(), 500);
  EXPECT_EQ(g.num_vertices(), 20);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.t, 0);
    EXPECT_LT(e.t, config.time_span);
    EXPECT_GT(e.f, 0.0);
    EXPECT_TRUE(t.HasPair(e.src, e.dst)) << e.src << "->" << e.dst;
  }
}

TEST(EmitInteractionsTest, EmptyTopologyYieldsNoEvents) {
  Topology t(5);
  Rng rng(1);
  GeneratorConfig config = SmallConfig();
  InteractionGraph g = EmitInteractions(
      t, config, [](Rng*) { return 1.0; },
      UniformTimeSampler(config.time_span), &rng);
  EXPECT_EQ(g.num_interactions(), 0);
}

class DatasetGeneratorTest
    : public ::testing::TestWithParam<int> {};

TEST_P(DatasetGeneratorTest, GeneratesPlausibleGraphs) {
  GeneratorConfig config = SmallConfig();
  InteractionGraph multigraph;
  switch (GetParam()) {
    case 0:
      multigraph = BitcoinLikeGenerator(config).Generate();
      break;
    case 1:
      multigraph = FacebookLikeGenerator(config).Generate();
      break;
    default:
      multigraph = PassengerLikeGenerator(config).Generate();
      break;
  }
  EXPECT_GE(multigraph.num_interactions(), config.num_interactions);
  TimeSeriesGraph g = TimeSeriesGraph::Build(multigraph);
  TimeSeriesGraph::Stats stats = g.ComputeStats();
  EXPECT_GT(stats.num_connected_pairs, 0);
  EXPECT_GT(stats.avg_flow_per_edge, 0.0);
  EXPECT_GE(stats.min_time, 0);
  EXPECT_LT(stats.max_time, config.time_span);
}

TEST_P(DatasetGeneratorTest, DeterministicGivenSeed) {
  GeneratorConfig config = SmallConfig();
  auto generate = [&config](int which) {
    switch (which) {
      case 0:
        return BitcoinLikeGenerator(config).Generate();
      case 1:
        return FacebookLikeGenerator(config).Generate();
      default:
        return PassengerLikeGenerator(config).Generate();
    }
  };
  InteractionGraph a = generate(GetParam());
  InteractionGraph b = generate(GetParam());
  ASSERT_EQ(a.num_interactions(), b.num_interactions());
  for (int64_t i = 0; i < a.num_interactions(); ++i) {
    const auto& ea = a.edges()[static_cast<size_t>(i)];
    const auto& eb = b.edges()[static_cast<size_t>(i)];
    EXPECT_EQ(ea.src, eb.src);
    EXPECT_EQ(ea.dst, eb.dst);
    EXPECT_EQ(ea.t, eb.t);
    EXPECT_EQ(ea.f, eb.f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, DatasetGeneratorTest,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return std::string("Bitcoin");
                             case 1:
                               return std::string("Facebook");
                             default:
                               return std::string("Passenger");
                           }
                         });

TEST(GeneratorStatsTest, BitcoinFlowsAreHeavyTailedWithMeanNearPaper) {
  GeneratorConfig config = SmallConfig();
  config.num_interactions = 20000;
  InteractionGraph g = BitcoinLikeGenerator(config).Generate();
  double sum = 0.0;
  double max_flow = 0.0;
  for (const auto& e : g.edges()) {
    sum += e.f;
    max_flow = std::max(max_flow, e.f);
    EXPECT_GE(e.f, 1e-4);  // dust truncation like the paper
  }
  const double mean = sum / static_cast<double>(g.num_interactions());
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 12.0);       // Pareto mean target ~4.8, high variance
  EXPECT_GT(max_flow, mean * 5);  // heavy tail
}

TEST(GeneratorStatsTest, FacebookFlowsAreSmallIntegers) {
  GeneratorConfig config = SmallConfig();
  InteractionGraph g = FacebookLikeGenerator(config).Generate();
  double sum = 0.0;
  for (const auto& e : g.edges()) {
    EXPECT_EQ(e.f, static_cast<double>(static_cast<int64_t>(e.f)));
    EXPECT_GE(e.f, 1.0);
    sum += e.f;
  }
  EXPECT_NEAR(sum / static_cast<double>(g.num_interactions()), 3.0, 0.5);
}

TEST(GeneratorStatsTest, PassengerFlowsMatchPaperMean) {
  GeneratorConfig config = SmallConfig();
  InteractionGraph g = PassengerLikeGenerator(config).Generate();
  double sum = 0.0;
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.f, 1.0);
    sum += e.f;
  }
  EXPECT_NEAR(sum / static_cast<double>(g.num_interactions()), 1.93, 0.4);
}

}  // namespace
}  // namespace flowmotif
