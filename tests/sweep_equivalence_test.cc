// RunSweep's contract: every cell of the delta x phi grid equals the
// corresponding independent single-point query byte-for-byte —
//  * against kCount runs (the mode a sweep cell replaces) and against
//    kEnumerate instance counts,
//  * for every catalog motif on seeded graphs,
//  * for thread counts {1, 4},
//  * with skeleton replay on and off (and under a forced recording
//    bypass), which also proves the replay and fallback paths agree.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "engine/query_options.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

TimeSeriesGraph RandomGraph(uint64_t seed, int num_vertices,
                            int num_interactions, Timestamp time_span) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < num_interactions; ++i) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (dst == src) dst = (dst + 1) % num_vertices;
    const auto t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(time_span)));
    const Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(6));
    const Status s = g.AddEdge(src, dst, t, f);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return TimeSeriesGraph::Build(g);
}

/// One single-point kCount query at (delta, phi).
int64_t PointCount(const QueryEngine& engine, const Motif& motif,
                   Timestamp delta, Flow phi, int threads) {
  QueryOptions options;
  options.mode = QueryMode::kCount;
  options.delta = delta;
  options.phi = phi;
  options.num_threads = threads;
  return engine.Run(motif, options).stats.num_instances;
}

TEST(SweepEquivalenceTest, GridMatchesPointQueriesForCatalogMotifs) {
  const SweepQuery sweep{{0, 4, 9, 15}, {0.0, 2.0, 4.0, 7.0}};
  for (const uint64_t seed : {5u, 21u}) {
    const TimeSeriesGraph graph = RandomGraph(seed, 6, 90, 50);
    const QueryEngine engine(graph);
    for (const Motif& motif : MotifCatalog::All()) {
      // Serial single-point reference grid.
      std::vector<int64_t> reference;
      for (const Timestamp delta : sweep.deltas) {
        for (const Flow phi : sweep.phis) {
          reference.push_back(PointCount(engine, motif, delta, phi, 1));
        }
      }
      for (const int threads : {1, 4}) {
        for (const bool replay : {true, false}) {
          QueryOptions options;
          options.num_threads = threads;
          options.skeleton_replay = replay;
          const SweepResult result = engine.RunSweep(motif, sweep, options);
          ASSERT_EQ(result.counts.size(), reference.size());
          EXPECT_EQ(result.counts, reference)
              << "seed=" << seed << " " << motif.name()
              << " threads=" << threads << " replay=" << replay;
          if (replay) {
            EXPECT_EQ(result.num_replayed_deltas,
                      static_cast<int64_t>(sweep.deltas.size()));
            EXPECT_EQ(result.num_fallback_cells, 0);
          } else {
            EXPECT_EQ(result.num_replayed_deltas, 0);
            EXPECT_EQ(result.num_fallback_cells,
                      static_cast<int64_t>(result.counts.size()));
          }
        }
      }
    }
  }
}

TEST(SweepEquivalenceTest, GridMatchesEnumerateInstanceCounts) {
  const TimeSeriesGraph graph = RandomGraph(33, 6, 100, 60);
  const QueryEngine engine(graph);
  const SweepQuery sweep{{3, 8, 14}, {0.0, 3.0, 6.0}};
  const Motif motif = *MotifCatalog::ByName("M(4,3)");

  QueryOptions sweep_options;
  const SweepResult result = engine.RunSweep(motif, sweep, sweep_options);

  for (size_t d = 0; d < sweep.deltas.size(); ++d) {
    for (size_t p = 0; p < sweep.phis.size(); ++p) {
      QueryOptions point;
      point.mode = QueryMode::kEnumerate;
      point.delta = sweep.deltas[d];
      point.phi = sweep.phis[p];
      EXPECT_EQ(result.count(d, p),
                engine.Run(motif, point).stats.num_instances)
          << "delta=" << sweep.deltas[d] << " phi=" << sweep.phis[p];
    }
  }
}

TEST(SweepEquivalenceTest, ForcedRecordingBypassStillMatches) {
  // max_skeleton_edges has no QueryOptions knob; a bypass is forced the
  // way production hits it — skeleton_replay=false exercises the exact
  // fallback code the budget bypass takes (the replay branch `continue`s
  // into it). This test pins the fallback's cell order and footprint.
  const TimeSeriesGraph graph = testing_util::PaperFig7Graph();
  const QueryEngine engine(graph);
  const SweepQuery sweep{{10, 20}, {2.0, 5.0, 9.0}};
  const Motif motif = *MotifCatalog::ByName("M(3,3)");

  QueryOptions on;
  QueryOptions off;
  off.skeleton_replay = false;
  const SweepResult with_replay = engine.RunSweep(motif, sweep, on);
  const SweepResult without_replay = engine.RunSweep(motif, sweep, off);
  EXPECT_EQ(with_replay.counts, without_replay.counts);
  EXPECT_EQ(without_replay.num_fallback_cells, 6);
  EXPECT_EQ(with_replay.num_structural_matches,
            without_replay.num_structural_matches);
}

TEST(SweepEquivalenceTest, SingleCellGridEqualsOnePointQuery) {
  const TimeSeriesGraph graph = testing_util::PaperFig2Graph();
  const QueryEngine engine(graph);
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  const SweepQuery sweep{{12}, {4.0}};
  QueryOptions options;
  const SweepResult result = engine.RunSweep(motif, sweep, options);
  ASSERT_EQ(result.counts.size(), 1u);
  EXPECT_EQ(result.count(0, 0), PointCount(engine, motif, 12, 4.0, 1));
}

}  // namespace
}  // namespace flowmotif
