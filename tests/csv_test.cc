#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace flowmotif {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CsvTest, SplitCsvLineBasic) {
  std::vector<std::string> fields = SplitCsvLine("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST_F(CsvTest, SplitCsvLineTrimsWhitespace) {
  std::vector<std::string> fields = SplitCsvLine(" a , b\t, c ", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST_F(CsvTest, SplitCsvLineEmptyFields) {
  std::vector<std::string> fields = SplitCsvLine("a,,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST_F(CsvTest, WriteThenReadRoundTrip) {
  {
    CsvWriter writer(path_, ',');
    ASSERT_TRUE(writer.status().ok());
    writer.WriteComment("header comment");
    writer.WriteRow({"1", "2", "3"});
    writer.WriteRow({"x", "y", "z"});
    ASSERT_TRUE(writer.Close().ok());
  }
  CsvReader reader(path_, ',');
  ASSERT_TRUE(reader.status().ok());
  std::vector<std::string> row;
  ASSERT_TRUE(reader.NextRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2", "3"}));
  ASSERT_TRUE(reader.NextRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_FALSE(reader.NextRow(&row));
}

TEST_F(CsvTest, ReaderSkipsBlankAndCommentLines) {
  {
    std::ofstream out(path_);
    out << "# comment\n\n  \n1,2\n#another\n3,4\n";
  }
  CsvReader reader(path_, ',');
  std::vector<std::string> row;
  ASSERT_TRUE(reader.NextRow(&row));
  EXPECT_EQ(row[0], "1");
  ASSERT_TRUE(reader.NextRow(&row));
  EXPECT_EQ(row[0], "3");
  EXPECT_FALSE(reader.NextRow(&row));
}

TEST_F(CsvTest, ReaderTracksLineNumbers) {
  {
    std::ofstream out(path_);
    out << "# c\n1,2\n3,4\n";
  }
  CsvReader reader(path_, ',');
  std::vector<std::string> row;
  reader.NextRow(&row);
  EXPECT_EQ(reader.line_number(), 2);
  reader.NextRow(&row);
  EXPECT_EQ(reader.line_number(), 3);
}

TEST_F(CsvTest, MissingFileReportsIoError) {
  CsvReader reader("/nonexistent/dir/file.csv", ',');
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::vector<std::string> row;
  EXPECT_FALSE(reader.NextRow(&row));
}

TEST_F(CsvTest, UnwritablePathReportsIoError) {
  CsvWriter writer("/nonexistent/dir/file.csv", ',');
  EXPECT_EQ(writer.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, TabDelimiter) {
  {
    CsvWriter writer(path_, '\t');
    writer.WriteRow({"a", "b"});
    ASSERT_TRUE(writer.Close().ok());
  }
  CsvReader reader(path_, '\t');
  std::vector<std::string> row;
  ASSERT_TRUE(reader.NextRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace flowmotif
