// The streaming subsystem's contract: a StreamingMotifMonitor fed by
// appends and seals answers — at every sealed epoch — byte-identically
// to a batch QueryEngine run on the equivalently built static prefix
// graph. Random seeded append schedules (varying epoch sizes, duplicate
// timestamps, growing vertex sets, optional static seeds) are replayed
// edge for edge into both sides; counts, top-k entries, and
// sliding-horizon live counts are compared per epoch, with the batch
// side run at 1 and 4 threads. A brute-force EndTime filter over the
// fully materialized instance set checks horizon expiry independently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "stream/streaming_monitor.h"

namespace flowmotif {
namespace {

constexpr int kBatchThreadCounts[] = {1, 4};

struct Schedule {
  std::vector<InteractionGraph::Edge> seed;  // epoch 0 (may be empty)
  std::vector<std::vector<InteractionGraph::Edge>> epochs;
};

/// One seeded random append schedule: non-decreasing timestamps with
/// frequent duplicates, a vertex universe that can grow mid-stream
/// (new-pair and new-vertex seals), epoch sizes from 1 to ~10, and an
/// optional static seed prefix.
Schedule MakeSchedule(uint64_t seed_value) {
  std::mt19937_64 rng(seed_value);
  Schedule schedule;

  const int initial_vertices = 4 + static_cast<int>(rng() % 4);  // 4..7
  const int max_vertices = initial_vertices + static_cast<int>(rng() % 4);
  int vertices = initial_vertices;
  Timestamp t = static_cast<Timestamp>(rng() % 50);

  const auto random_edge = [&]() {
    // Occasionally let the universe grow so some seals change topology.
    if (vertices < max_vertices && rng() % 12 == 0) ++vertices;
    const VertexId src = static_cast<VertexId>(rng() % vertices);
    VertexId dst = static_cast<VertexId>(rng() % vertices);
    if (src == dst) dst = (dst + 1) % vertices;
    t += static_cast<Timestamp>(rng() % 4);  // 0 keeps duplicate times
    const Flow f = static_cast<Flow>(1 + rng() % 9);
    return InteractionGraph::Edge{src, dst, t, f};
  };

  const size_t num_seed_edges = rng() % 25;  // sometimes empty
  for (size_t i = 0; i < num_seed_edges; ++i) {
    schedule.seed.push_back(random_edge());
  }
  const size_t num_epochs = 4 + rng() % 6;  // 4..9
  schedule.epochs.resize(num_epochs);
  for (std::vector<InteractionGraph::Edge>& epoch : schedule.epochs) {
    const size_t n = 1 + rng() % 10;
    for (size_t i = 0; i < n; ++i) epoch.push_back(random_edge());
  }
  return schedule;
}

InteractionGraph BuildMultigraph(
    const std::vector<InteractionGraph::Edge>& edges) {
  InteractionGraph multigraph;
  for (const InteractionGraph::Edge& e : edges) {
    const Status status = multigraph.AddEdge(e.src, e.dst, e.t, e.f);
    ASSERT_TRUE(status.ok()) << status, multigraph;
  }
  return multigraph;
}

/// Per-epoch check: the monitor's live aggregates against batch runs on
/// the equivalent static prefix graph at every thread count.
void ExpectEpochMatchesBatch(const StreamingMotifMonitor& monitor,
                             const Motif& motif,
                             const std::vector<InteractionGraph::Edge>& prefix,
                             const std::string& label) {
  InteractionGraph multigraph;
  for (const InteractionGraph::Edge& e : prefix) {
    const Status status = multigraph.AddEdge(e.src, e.dst, e.t, e.f);
    ASSERT_TRUE(status.ok()) << status;
  }
  const TimeSeriesGraph batch_graph = TimeSeriesGraph::Build(multigraph);
  const QueryEngine engine(batch_graph);
  const StreamOptions& sopts = monitor.options();

  // The sealed snapshot itself must equal the batch build, series for
  // series (the EpochLog byte-identity contract).
  const std::shared_ptr<const TimeSeriesGraph> snapshot = monitor.Snapshot();
  ASSERT_EQ(snapshot->num_vertices(), batch_graph.num_vertices()) << label;
  ASSERT_EQ(snapshot->num_pairs(), batch_graph.num_pairs()) << label;
  for (int64_t p = 0; p < batch_graph.num_pairs(); ++p) {
    const TimeSeriesGraph::PairEdge& a = snapshot->pair(p);
    const TimeSeriesGraph::PairEdge& b = batch_graph.pair(p);
    ASSERT_EQ(a.src, b.src) << label;
    ASSERT_EQ(a.dst, b.dst) << label;
    ASSERT_EQ(a.series.size(), b.series.size()) << label << " pair " << p;
    for (size_t i = 0; i < a.series.size(); ++i) {
      ASSERT_EQ(a.series.time(i), b.series.time(i)) << label;
      ASSERT_EQ(a.series.flow(i), b.series.flow(i)) << label;
    }
  }

  for (const int threads : kBatchThreadCounts) {
    QueryOptions qopts;
    qopts.delta = sopts.delta;
    qopts.phi = sopts.phi;
    qopts.num_threads = threads;

    qopts.mode = QueryMode::kCount;
    const QueryResult count = engine.Run(motif, qopts);
    ASSERT_EQ(monitor.TotalInstances(), count.stats.num_instances)
        << label << " threads=" << threads;

    // Top-k equivalence is checked at phi = 0 workloads only: the batch
    // top-k searcher runs the pure floating threshold of the paper and
    // ignores the static phi floor the monitor applies everywhere.
    if (sopts.phi == 0.0 && sopts.k >= 1) {
      qopts.mode = QueryMode::kTopK;
      qopts.k = sopts.k;
      const QueryResult topk = engine.Run(motif, qopts);
      const std::vector<TopKEntry> live = monitor.TopK();
      ASSERT_EQ(live.size(), topk.topk.size())
          << label << " threads=" << threads;
      for (size_t i = 0; i < live.size(); ++i) {
        ASSERT_DOUBLE_EQ(live[i].flow, topk.topk[i].flow)
            << label << " threads=" << threads << " entry " << i;
        ASSERT_EQ(live[i].instance, topk.topk[i].instance)
            << label << " threads=" << threads << " entry " << i;
      }
    }
  }

  // Horizon expiry against a brute-force filter of the full instance
  // set (the definition of "live": last interaction younger than
  // watermark - horizon).
  if (sopts.horizon > 0) {
    QueryOptions qopts;
    qopts.mode = QueryMode::kEnumerate;
    qopts.delta = sopts.delta;
    qopts.phi = sopts.phi;
    qopts.collect_limit = -1;
    const QueryResult all = engine.Run(motif, qopts);
    const Timestamp cutoff = monitor.watermark() - sopts.horizon;
    int64_t live = 0;
    for (const MotifInstance& instance : all.instances) {
      if (instance.EndTime() > cutoff) ++live;
    }
    ASSERT_EQ(monitor.LiveInstances(), live) << label;
  } else {
    ASSERT_EQ(monitor.LiveInstances(), monitor.TotalInstances()) << label;
  }
}

struct StreamCase {
  Motif motif;
  Timestamp delta;
  Flow phi;
  Timestamp horizon;
};

std::vector<StreamCase> StreamCases() {
  // Path motifs take the incremental affected-origin rescan; the
  // general fan-out forces the full-P1 topology refresh. phi > 0 cases
  // exercise flow pruning inside the settled/hot enumeration split;
  // horizon > 0 cases exercise the expiry ring buffer.
  return {
      {*Motif::Parse("0-1", "M(2,1)"), 8, 0.0, 0},
      {*MotifCatalog::ByName("M(3,2)"), 10, 0.0, 12},
      {*MotifCatalog::ByName("M(3,3)"), 14, 0.0, 0},
      {*MotifCatalog::ByName("M(3,2)"), 10, 6.0, 9},
      {*Motif::Parse("0>1,0>2", "fanout"), 12, 0.0, 15},
  };
}

TEST(StreamEquivalenceTest, EveryEpochMatchesBatchOnPrefixGraph) {
  // ~50 seeded schedules; each runs every case through every epoch.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const Schedule schedule = MakeSchedule(seed);
    for (const StreamCase& c : StreamCases()) {
      StreamOptions sopts;
      sopts.delta = c.delta;
      sopts.phi = c.phi;
      sopts.k = 5;
      sopts.horizon = c.horizon;

      InteractionGraph seed_graph;
      for (const InteractionGraph::Edge& e : schedule.seed) {
        const Status status = seed_graph.AddEdge(e.src, e.dst, e.t, e.f);
        ASSERT_TRUE(status.ok()) << status;
      }
      StreamingMotifMonitor monitor(c.motif, sopts, seed_graph);

      std::vector<InteractionGraph::Edge> prefix = schedule.seed;
      if (!prefix.empty()) {
        ExpectEpochMatchesBatch(
            monitor, c.motif, prefix,
            "seed=" + std::to_string(seed) + " motif=" + c.motif.name() +
                " epoch=0");
        if (::testing::Test::HasFatalFailure()) return;
      }
      for (size_t epoch = 0; epoch < schedule.epochs.size(); ++epoch) {
        for (const InteractionGraph::Edge& e : schedule.epochs[epoch]) {
          monitor.Append(e);
          prefix.push_back(e);
        }
        const StreamingMotifMonitor::EpochStats stats = monitor.SealEpoch();
        ASSERT_EQ(stats.num_appended, schedule.epochs[epoch].size());
        ExpectEpochMatchesBatch(
            monitor, c.motif, prefix,
            "seed=" + std::to_string(seed) + " motif=" + c.motif.name() +
                " epoch=" + std::to_string(epoch + 1));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(StreamEquivalenceTest, MonitorOverEmptyStreamStartsEmpty) {
  StreamOptions sopts;
  sopts.delta = 10;
  StreamingMotifMonitor monitor(*MotifCatalog::ByName("M(3,2)"), sopts);
  EXPECT_EQ(monitor.TotalInstances(), 0);
  EXPECT_EQ(monitor.LiveInstances(), 0);
  EXPECT_TRUE(monitor.TopK().empty());
  EXPECT_EQ(monitor.epoch(), 0u);
  // Sealing with nothing buffered is a published no-op.
  const StreamingMotifMonitor::EpochStats stats = monitor.SealEpoch();
  EXPECT_EQ(stats.num_appended, 0u);
  EXPECT_EQ(monitor.TotalInstances(), 0);
}

TEST(StreamEquivalenceTest, EmptyStreamGrowsIntoBatchEquivalence) {
  // No seed at all: the monitor discovers vertices, pairs, and matches
  // purely from appends.
  StreamOptions sopts;
  sopts.delta = 10;
  sopts.k = 3;
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  StreamingMotifMonitor monitor(motif, sopts);

  const std::vector<InteractionGraph::Edge> edges = {
      {0, 1, 5, 2.0},  {1, 2, 7, 3.0},  {0, 1, 9, 1.0},
      {2, 3, 12, 4.0}, {1, 2, 14, 2.0}, {3, 0, 15, 6.0},
      {0, 1, 18, 5.0}, {1, 2, 18, 1.0},
  };
  std::vector<InteractionGraph::Edge> prefix;
  for (size_t i = 0; i < edges.size(); ++i) {
    monitor.Append(edges[i]);
    prefix.push_back(edges[i]);
    if (i % 2 == 1 || i + 1 == edges.size()) {
      monitor.SealEpoch();
      ExpectEpochMatchesBatch(monitor, motif, prefix,
                              "growing edge " + std::to_string(i));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(StreamEquivalenceTest, AlertsFireExactlyOnceAtSettlement) {
  // Alerts fire when an instance settles with flow >= the bound; later
  // seals must never re-fire them, and every settled instance above the
  // bound must fire exactly once by the end of the stream.
  StreamOptions sopts;
  sopts.delta = 8;
  sopts.alert_min_flow = 3.0;
  const Motif motif = *Motif::Parse("0-1-0", "M(2,2)");
  StreamingMotifMonitor monitor(motif, sopts);

  std::vector<StreamingMotifMonitor::Alert> alerts;
  monitor.SetAlertCallback(
      [&alerts](const StreamingMotifMonitor::Alert& alert) {
        alerts.push_back(alert);
      });

  const std::vector<InteractionGraph::Edge> edges = {
      {0, 1, 1, 5.0}, {1, 2, 3, 4.0},  {0, 1, 10, 2.0}, {1, 2, 12, 1.0},
      {0, 1, 30, 9.0}, {1, 2, 31, 8.0}, {2, 0, 60, 1.0},
  };
  std::vector<InteractionGraph::Edge> prefix;
  for (const InteractionGraph::Edge& e : edges) {
    monitor.Append(e);
    prefix.push_back(e);
    monitor.SealEpoch();
  }
  // Push the watermark far past every window so everything settles.
  monitor.Append(0, 1, 1000, 1.0);
  prefix.push_back({0, 1, 1000, 1.0});
  monitor.SealEpoch();

  // Reference: all instances of the final graph with flow >= bound.
  InteractionGraph multigraph;
  for (const InteractionGraph::Edge& e : prefix) {
    ASSERT_TRUE(multigraph.AddEdge(e.src, e.dst, e.t, e.f).ok());
  }
  const TimeSeriesGraph graph = TimeSeriesGraph::Build(multigraph);
  QueryEngine engine(graph);
  QueryOptions qopts;
  qopts.mode = QueryMode::kEnumerate;
  qopts.delta = sopts.delta;
  qopts.collect_limit = -1;
  const QueryResult all = engine.Run(motif, qopts);
  std::vector<MotifInstance> expected;
  for (const MotifInstance& instance : all.instances) {
    if (instance.InstanceFlow() >= sopts.alert_min_flow) {
      expected.push_back(instance);
    }
  }
  ASSERT_EQ(alerts.size(), expected.size());
  // Every expected instance appears in the fired set exactly once
  // (settlement order interleaves epochs, so compare as multisets).
  for (const MotifInstance& instance : expected) {
    int found = 0;
    for (const StreamingMotifMonitor::Alert& alert : alerts) {
      if (alert.instance == instance) ++found;
    }
    ASSERT_EQ(found, 1);
  }
}

TEST(StreamEquivalenceTest, MalformedAppendIsRejectedAndStateUnchanged) {
  // Ingest is an untrusted boundary: malformed edges come back as
  // InvalidArgument and leave the monitor exactly as it was — the next
  // seal, and every aggregate, behaves as if they were never offered.
  StreamOptions sopts;
  sopts.delta = 10;
  sopts.k = 3;
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  StreamingMotifMonitor monitor(motif, sopts);

  ASSERT_TRUE(monitor.Append(0, 1, 5, 2.0).ok());
  ASSERT_TRUE(monitor.Append(1, 2, 7, 3.0).ok());
  monitor.SealEpoch();
  const int64_t total_before = monitor.TotalInstances();
  const Timestamp watermark_before = monitor.watermark();

  // Timestamp behind the watermark, negative ids, non-positive flow.
  EXPECT_EQ(monitor.Append(0, 1, 3, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(monitor.Append(-1, 2, 9, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(monitor.Append(0, -2, 9, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(monitor.Append(0, 1, 9, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(monitor.Append(InteractionGraph::Edge{0, 1, 9, -4.0}).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(monitor.watermark(), watermark_before);
  const StreamingMotifMonitor::EpochStats stats = monitor.SealEpoch();
  EXPECT_EQ(stats.num_appended, 0u);
  EXPECT_EQ(monitor.TotalInstances(), total_before);

  // Well-formed appends still succeed after rejections, and the stream
  // stays batch-equivalent.
  ASSERT_TRUE(monitor.Append(0, 1, 9, 1.0).ok());
  ASSERT_TRUE(monitor.Append(1, 2, 14, 2.0).ok());
  monitor.SealEpoch();
  const std::vector<InteractionGraph::Edge> prefix = {
      {0, 1, 5, 2.0}, {1, 2, 7, 3.0}, {0, 1, 9, 1.0}, {1, 2, 14, 2.0}};
  ExpectEpochMatchesBatch(monitor, motif, prefix, "after rejections");
}

}  // namespace
}  // namespace flowmotif
