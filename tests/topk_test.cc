#include "core/topk.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "core/motif.h"
#include "core/structural_match.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig2Graph;
using testing_util::PaperFig7Graph;

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)"); }

TEST(TopKTest, Top1OnFig7IsThePaperInstance) {
  // Table 2 / Sec. 5.1: the top-1 instance has flow 5 and is
  // [e1<-{(10,5)}, e2<-{(11,3),(16,3)}, e3<-{(19,6)}].
  TimeSeriesGraph graph = PaperFig7Graph();
  TopKSearcher searcher(graph, M33(), 10, 1);
  TopKSearcher::Result result = searcher.Run();
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(result.entries[0].flow, 5.0);
  EXPECT_EQ(result.entries[0].instance.edge_sets[1],
            (std::vector<Interaction>{{11, 3.0}, {16, 3.0}}));
}

TEST(TopKTest, FlowsAreSortedDescending) {
  TimeSeriesGraph graph = PaperFig7Graph();
  TopKSearcher searcher(graph, M33(), 10, 10);
  TopKSearcher::Result result = searcher.Run();
  ASSERT_GE(result.entries.size(), 2u);
  for (size_t i = 1; i < result.entries.size(); ++i) {
    EXPECT_GE(result.entries[i - 1].flow, result.entries[i].flow);
  }
}

TEST(TopKTest, Top2OnFig2) {
  // Instance flows on the running example with delta 10 (phi ignored for
  // top-k): the two phi=7 instances have flows 10 and 7.
  TimeSeriesGraph graph = PaperFig2Graph();
  TopKSearcher searcher(graph, M33(), 10, 2);
  TopKSearcher::Result result = searcher.Run();
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result.entries[0].flow, 10.0);
  EXPECT_DOUBLE_EQ(result.entries[1].flow, 7.0);
}

TEST(TopKTest, KthFlowAccessor) {
  TimeSeriesGraph graph = PaperFig2Graph();
  TopKSearcher searcher(graph, M33(), 10, 2);
  TopKSearcher::Result result = searcher.Run();
  EXPECT_DOUBLE_EQ(result.KthFlow(1), 10.0);
  EXPECT_DOUBLE_EQ(result.KthFlow(2), 7.0);
  EXPECT_EQ(result.KthFlow(3), 0.0);  // fewer than 3 found
  EXPECT_EQ(result.KthFlow(0), 0.0);
}

TEST(TopKTest, KLargerThanInstanceCountReturnsAll) {
  TimeSeriesGraph graph = PaperFig7Graph();
  TopKSearcher searcher(graph, M33(), 10, 100);
  TopKSearcher::Result result = searcher.Run();
  // Fig. 7's match yields 4 instances; the two other rotations of the
  // single triangle contribute one each (hand-traced).
  EXPECT_EQ(result.entries.size(), 6u);
}

TEST(TopKTest, EntriesAreValidMaximalInstances) {
  TimeSeriesGraph g = PaperFig7Graph();
  Motif m = M33();
  TopKSearcher searcher(g, m, 10, 10);
  for (const auto& entry : searcher.Run().entries) {
    Status s = ValidateInstance(g, m, entry.instance, 10, 0.0);
    EXPECT_TRUE(s.ok()) << s;
    EXPECT_DOUBLE_EQ(entry.instance.InstanceFlow(), entry.flow);
  }
}

TEST(TopKTest, RunOnMatchesRestrictsScope) {
  TimeSeriesGraph g = PaperFig2Graph();
  Motif m = M33();
  // Only the second triangle's canonical rotation.
  TopKSearcher searcher(g, m, 10, 5);
  TopKSearcher::Result result = searcher.RunOnMatches({{1, 2, 3}});
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(result.entries[0].flow, 7.0);
}

TEST(TopKTest, TopKFlowsDecreaseAsKGrows) {
  // The Fig. 11 property: the flow of the k-th instance is non-increasing
  // in k.
  TimeSeriesGraph g = PaperFig7Graph();
  Motif m = M33();
  Flow prev = std::numeric_limits<Flow>::infinity();
  for (int64_t k : {1, 2, 3, 4}) {
    TopKSearcher searcher(g, m, 10, k);
    Flow kth = searcher.Run().KthFlow(static_cast<size_t>(k));
    EXPECT_LE(kth, prev);
    prev = kth;
  }
}

TEST(TopKTest, StatsExposeUnderlyingEnumeration) {
  TimeSeriesGraph graph = PaperFig7Graph();
  TopKSearcher searcher(graph, M33(), 10, 1);
  TopKSearcher::Result result = searcher.Run();
  EXPECT_GT(result.stats.num_structural_matches, 0);
  EXPECT_GT(result.stats.num_windows_processed, 0);
}

TEST(SharedFlowThresholdTest, ObserveRaisesAtKthObservedFlow) {
  SharedFlowThreshold shared(3);
  EXPECT_EQ(shared.ExclusiveBound(), 0.0);
  shared.Observe(5.0);
  shared.Observe(7.0);
  // Fewer than k flows known: no sound bound yet.
  EXPECT_EQ(shared.ExclusiveBound(), 0.0);
  shared.Observe(6.0);
  // k = 3 flows observed: bound admits flows equal to the k-th best (5).
  EXPECT_DOUBLE_EQ(
      shared.ExclusiveBound(),
      std::nextafter(5.0, -std::numeric_limits<Flow>::infinity()));
  // A better flow evicts 5 from the k best: the k-th best is now 6.
  shared.Observe(10.0);
  EXPECT_DOUBLE_EQ(
      shared.ExclusiveBound(),
      std::nextafter(6.0, -std::numeric_limits<Flow>::infinity()));
  // Flows at or below the k-th best change nothing.
  shared.Observe(1.0);
  shared.Observe(6.0);
  EXPECT_DOUBLE_EQ(
      shared.ExclusiveBound(),
      std::nextafter(6.0, -std::numeric_limits<Flow>::infinity()));
}

TEST(SharedFlowThresholdTest, ObserveAndCertificatesCompose) {
  // An external RaiseToKthBest certificate above the observed k-th best
  // must win, and later observations must never lower it.
  SharedFlowThreshold shared(2);
  shared.Observe(1.0);
  shared.Observe(2.0);
  shared.RaiseToKthBest(8.0);
  const Flow raised = shared.ExclusiveBound();
  EXPECT_DOUBLE_EQ(
      raised, std::nextafter(8.0, -std::numeric_limits<Flow>::infinity()));
  shared.Observe(3.0);
  EXPECT_DOUBLE_EQ(shared.ExclusiveBound(), raised);
}

TEST(SharedFlowThresholdTest, ConcurrentObserversKeepBoundMonotone) {
  // Regression for the acquire/release audit: under concurrent raises a
  // reader must never see the bound move backwards, and the final bound
  // must be exactly the k-th best of everything observed.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  constexpr int64_t kK = 16;
  SharedFlowThreshold shared(kK);
  std::vector<std::thread> threads;
  std::atomic<bool> monotone{true};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([w, &shared, &monotone] {
      Flow last_seen = 0.0;
      for (int i = 1; i <= kPerWriter; ++i) {
        shared.Observe(static_cast<Flow>(w + kWriters * i));
        const Flow bound = shared.ExclusiveBound();
        if (bound < last_seen) monotone = false;
        last_seen = bound;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(monotone.load());
  // Global flows are {kWriters .. kWriters*kPerWriter + kWriters - 1},
  // each exactly once; the k-th best is max - (k - 1).
  const Flow kth_best =
      static_cast<Flow>(kWriters * kPerWriter + kWriters - 1 - (kK - 1));
  EXPECT_DOUBLE_EQ(
      shared.ExclusiveBound(),
      std::nextafter(kth_best, -std::numeric_limits<Flow>::infinity()));
}

TEST(TopKDeathTest, KMustBePositive) {
  TimeSeriesGraph g = PaperFig7Graph();
  EXPECT_DEATH(TopKSearcher(g, M33(), 10, 0), "Check failed");
}

}  // namespace
}  // namespace flowmotif
