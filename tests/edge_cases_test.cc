// Boundary-condition suite across the whole API surface: degenerate
// graphs, extreme parameters, timestamp ties, and negative time domains.
#include <gtest/gtest.h>

#include <cmath>

#include "core/counter.h"
#include "core/dp.h"
#include "core/enumerator.h"
#include "core/join_baseline.h"
#include "core/motif_catalog.h"
#include "core/significance.h"
#include "core/topk.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;

Motif Chain3() { return *Motif::FromSpanningPath({0, 1, 2}); }

EnumerationOptions Opts(Timestamp delta, Flow phi) {
  EnumerationOptions o;
  o.delta = delta;
  o.phi = phi;
  return o;
}

TEST(EdgeCasesTest, EmptyGraphAcrossAllAlgorithms) {
  TimeSeriesGraph g = TimeSeriesGraph::Build(InteractionGraph());
  Motif motif = Chain3();
  EXPECT_EQ(FlowMotifEnumerator(g, motif, Opts(10, 0)).Run().num_instances,
            0);
  EXPECT_EQ(JoinMotifEnumerator(g, motif, 10, 0).Run().num_instances, 0);
  EXPECT_EQ(InstanceCounter(g, motif, 10, 0).Run().num_instances, 0);
  EXPECT_FALSE(MaxFlowDpSearcher(g, motif, 10).Run().found);
  EXPECT_TRUE(TopKSearcher(g, motif, 10, 3).Run().entries.empty());
}

TEST(EdgeCasesTest, GraphSmallerThanMotif) {
  // Two vertices cannot host a 3-node chain.
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0}, {1, 0, 2, 1.0}});
  for (const Motif& motif : MotifCatalog::All()) {
    if (motif.num_nodes() > 2) {
      EXPECT_EQ(
          FlowMotifEnumerator(g, motif, Opts(10, 0)).Run().num_instances, 0)
          << motif.name();
    }
  }
}

TEST(EdgeCasesTest, ZeroDeltaRequiresInstantCoincidence) {
  // delta = 0: a window is one instant; consecutive edges need strictly
  // increasing times, which is impossible inside a single instant for
  // multi-edge motifs.
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {1, 2, 10, 1.0}});
  EXPECT_EQ(FlowMotifEnumerator(g, Chain3(), Opts(0, 0)).Run().num_instances,
            0);

  // A single-edge motif at delta = 0 picks up exactly the co-instant
  // elements.
  TimeSeriesGraph g2 = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 10, 2.0},
                                  {0, 1, 11, 4.0}});
  Motif single = *Motif::FromSpanningPath({0, 1});
  FlowMotifEnumerator enumerator(g2, single, Opts(0, 0));
  std::vector<MotifInstance> instances = enumerator.CollectAll();
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].edge_sets[0].size(), 2u);  // both t=10 elements
  EXPECT_EQ(instances[1].edge_sets[0].size(), 1u);  // the t=11 element
}

TEST(EdgeCasesTest, SpanExactlyDeltaIsAccepted) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 0, 1.0}, {1, 2, 10, 1.0}});
  EXPECT_EQ(
      FlowMotifEnumerator(g, Chain3(), Opts(10, 0)).Run().num_instances, 1);
  EXPECT_EQ(
      FlowMotifEnumerator(g, Chain3(), Opts(9, 0)).Run().num_instances, 0);
}

TEST(EdgeCasesTest, NegativeTimestampsWork) {
  TimeSeriesGraph g = MakeGraph({{0, 1, -100, 2.0}, {1, 2, -95, 3.0}});
  EnumerationOptions options = Opts(10, 0);
  FlowMotifEnumerator enumerator(g, Chain3(), options);
  std::vector<MotifInstance> instances = enumerator.CollectAll();
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].StartTime(), -100);
  EXPECT_TRUE(ValidateInstance(g, Chain3(), instances[0], 10, 0).ok());

  // Join and counter agree in negative time too.
  EXPECT_EQ(JoinMotifEnumerator(g, Chain3(), 10, 0).Run().num_instances, 1);
  EXPECT_EQ(InstanceCounter(g, Chain3(), 10, 0).Run().num_instances, 1);
}

TEST(EdgeCasesTest, TimestampTiesAcrossEdgesNeverSatisfyStrictOrder) {
  // All interactions at the same instant: any multi-edge motif is empty.
  TimeSeriesGraph g = MakeGraph({{0, 1, 5, 1.0}, {1, 2, 5, 1.0},
                                 {2, 0, 5, 1.0}});
  for (const char* name : {"M(3,2)", "M(3,3)"}) {
    Motif motif = *MotifCatalog::ByName(name);
    EXPECT_EQ(
        FlowMotifEnumerator(g, motif, Opts(100, 0)).Run().num_instances, 0)
        << name;
    EXPECT_EQ(JoinMotifEnumerator(g, motif, 100, 0).Run().num_instances, 0)
        << name;
  }
}

TEST(EdgeCasesTest, HugeFlowsStayFinite) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1e300}, {0, 1, 2, 1e300},
                                 {1, 2, 3, 1e300}});
  FlowMotifEnumerator enumerator(g, Chain3(), Opts(10, 0));
  enumerator.Run([](const InstanceView& view) {
    EXPECT_TRUE(std::isfinite(view.flow));
    EXPECT_GT(view.flow, 0.0);
    return true;
  });
}

TEST(EdgeCasesTest, TinyFlowsRespectPhi) {
  // Bitcoin-style dust: 1e-4 flows; phi barely above one element's flow
  // forces 2-element aggregation.
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1e-4}, {0, 1, 2, 1e-4},
                                 {1, 2, 3, 1e-3}});
  FlowMotifEnumerator enumerator(g, Chain3(), Opts(10, 1.5e-4));
  std::vector<MotifInstance> instances = enumerator.CollectAll();
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].edge_sets[0].size(), 2u);
}

TEST(EdgeCasesTest, PhiLargerThanAnyAggregateYieldsNothing) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  for (const Motif& motif : MotifCatalog::All()) {
    EXPECT_EQ(
        FlowMotifEnumerator(g, motif, Opts(10, 1e9)).Run().num_instances, 0)
        << motif.name();
  }
}

TEST(EdgeCasesTest, HugeDeltaCoversWholeTimeline) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0});
  // One window per match covers everything; enumeration still terminates
  // and agrees with the join baseline.
  EnumerationOptions options = Opts(1'000'000'000, 0.0);
  int64_t enumerated =
      FlowMotifEnumerator(g, m33, options).Run().num_instances;
  EXPECT_EQ(JoinMotifEnumerator(g, m33, options.delta, 0.0)
                .Run()
                .num_instances,
            enumerated);
  EXPECT_GT(enumerated, 0);
}

TEST(EdgeCasesTest, SignificanceOnDegenerateGraphs) {
  // A graph with a single interaction: permutation is the identity.
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 5.0}});
  SignificanceAnalyzer::Options options;
  options.num_random_graphs = 3;
  options.seed = 1;
  options.delta = 10;
  options.phi = 1.0;
  SignificanceAnalyzer analyzer(g, options);
  SignificanceAnalyzer::MotifReport report =
      analyzer.Analyze(*Motif::FromSpanningPath({0, 1}));
  EXPECT_EQ(report.real_count, 1);
  for (double c : report.random_counts) EXPECT_EQ(c, 1.0);
  EXPECT_EQ(report.z_score, 0.0);
  EXPECT_EQ(report.p_value, 1.0);
}

TEST(EdgeCasesTest, AnalyzeIsIndependentOfMotifSetComposition) {
  // The analyzer's RNG restarts per motif, so a report does not depend
  // on which other motifs are analyzed around it.
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  SignificanceAnalyzer::Options options;
  options.num_random_graphs = 4;
  options.seed = 9;
  options.delta = 10;
  options.phi = 5.0;
  SignificanceAnalyzer analyzer(g, options);

  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)");
  SignificanceAnalyzer::MotifReport alone = analyzer.Analyze(m33);
  std::vector<SignificanceAnalyzer::MotifReport> in_set = analyzer.AnalyzeAll(
      {*MotifCatalog::ByName("M(3,2)"), m33, *MotifCatalog::ByName("M(4,3)")});
  EXPECT_EQ(alone.random_counts, in_set[1].random_counts);
  EXPECT_EQ(alone.z_score, in_set[1].z_score);
}

TEST(EdgeCasesTest, SelfLoopHeavyGraph) {
  // Self loops never participate, even when they dominate the graph.
  TimeSeriesGraph g = MakeGraph({{0, 0, 1, 1.0}, {1, 1, 2, 1.0},
                                 {2, 2, 3, 1.0}, {0, 1, 4, 1.0},
                                 {1, 2, 5, 1.0}});
  EXPECT_EQ(FlowMotifEnumerator(g, Chain3(), Opts(10, 0)).Run().num_instances,
            1);
}

}  // namespace
}  // namespace flowmotif
