// Property tests of the flow-permutation views (storage split):
//  * a flow-permuted view shares every per-series timestamp array *by
//    identity* (same pointer) and the CSR topology storage;
//  * the graph-wide flow multiset is preserved and per-series sizes are
//    unchanged (the permutation shuffles across all interactions, so
//    per-series multisets may change — the global one may not);
//  * the original graph's flows are untouched;
//  * the RNG stream is keyed on the seed only: view i is identical no
//    matter how many views are drawn, which pool size counts them, or
//    which motif is analyzed first;
//  * DeepCopy yields fresh identities with equal content.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/motif_catalog.h"
#include "core/significance.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace flowmotif {
namespace {

TimeSeriesGraph RandomGraph(uint64_t seed, int num_vertices,
                            int num_interactions, Timestamp time_span) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < num_interactions; ++i) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (dst == src) dst = (dst + 1) % num_vertices;
    const auto t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(time_span)));
    const Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(7));
    const Status s = g.AddEdge(src, dst, t, f);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return TimeSeriesGraph::Build(g);
}

std::vector<Flow> AllFlows(const TimeSeriesGraph& graph) {
  std::vector<Flow> flows;
  for (const TimeSeriesGraph::PairEdge& pe : graph.pairs()) {
    for (size_t i = 0; i < pe.series.size(); ++i) {
      flows.push_back(pe.series.flow(i));
    }
  }
  return flows;
}

TEST(FlowPermutationTest, ViewSharesTimestampStorageByIdentity) {
  for (uint64_t seed : {2u, 9u, 21u}) {
    const TimeSeriesGraph graph = RandomGraph(seed, 7, 90, 60);
    Rng rng(seed * 17 + 1);
    const TimeSeriesGraph view = graph.WithPermutedFlows(&rng);

    ASSERT_EQ(view.num_pairs(), graph.num_pairs());
    EXPECT_EQ(view.topology_identity(), graph.topology_identity());
    for (int64_t p = 0; p < graph.num_pairs(); ++p) {
      const EdgeSeries& orig = graph.pair(static_cast<size_t>(p)).series;
      const EdgeSeries& permuted = view.pair(static_cast<size_t>(p)).series;
      // Same identity AND the very same vector object behind times().
      EXPECT_EQ(permuted.timestamp_identity(), orig.timestamp_identity());
      EXPECT_EQ(&permuted.times(), &orig.times());
      EXPECT_EQ(permuted.size(), orig.size());
      // Flow storage is independent: prefix sums reflect the new flows.
      EXPECT_EQ(view.pair(static_cast<size_t>(p)).src,
                graph.pair(static_cast<size_t>(p)).src);
      EXPECT_EQ(view.pair(static_cast<size_t>(p)).dst,
                graph.pair(static_cast<size_t>(p)).dst);
    }
  }
}

TEST(FlowPermutationTest, FlowMultisetPreservedAndOriginalUntouched) {
  for (uint64_t seed : {4u, 13u, 33u}) {
    const TimeSeriesGraph graph = RandomGraph(seed, 6, 80, 50);
    const std::vector<Flow> before = AllFlows(graph);

    Rng rng(seed + 100);
    const TimeSeriesGraph view = graph.WithPermutedFlows(&rng);

    // Original flows byte-identical after the permutation.
    EXPECT_EQ(AllFlows(graph), before);

    // The view's flow multiset equals the original's.
    std::vector<Flow> sorted_before = before;
    std::vector<Flow> sorted_view = AllFlows(view);
    std::sort(sorted_before.begin(), sorted_before.end());
    std::sort(sorted_view.begin(), sorted_view.end());
    EXPECT_EQ(sorted_view, sorted_before);

    // Per-series totals must match the per-series flows (prefix sums
    // rebuilt for the view, not inherited).
    for (int64_t p = 0; p < view.num_pairs(); ++p) {
      const EdgeSeries& s = view.pair(static_cast<size_t>(p)).series;
      Flow total = 0.0;
      for (size_t i = 0; i < s.size(); ++i) total += s.flow(i);
      EXPECT_DOUBLE_EQ(s.TotalFlow(), total);
    }
  }
}

TEST(FlowPermutationTest, RngStreamIndependentOfHowViewsAreConsumed) {
  const TimeSeriesGraph graph = RandomGraph(8, 6, 70, 40);

  // Drawing 3 views then 2 more from a fresh stream equals drawing 5.
  Rng rng_a(77);
  std::vector<TimeSeriesGraph> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(graph.WithPermutedFlows(&rng_a));
  Rng rng_b(77);
  for (int i = 0; i < 5; ++i) {
    const TimeSeriesGraph again = graph.WithPermutedFlows(&rng_b);
    EXPECT_EQ(AllFlows(again), AllFlows(batch[static_cast<size_t>(i)]))
        << "view " << i;
  }
}

TEST(FlowPermutationTest, EnsembleIdenticalAcrossPoolSizeAndMotifOrder) {
  const TimeSeriesGraph graph = RandomGraph(14, 6, 80, 40);
  SignificanceAnalyzer::Options options;
  options.num_random_graphs = 5;
  options.seed = 1234;
  options.delta = 9;
  options.phi = 2.0;

  const Motif m33 = *MotifCatalog::ByName("M(3,3)");
  const Motif m54 = *MotifCatalog::ByName("M(5,4)");

  // Serial reference: analyze M(3,3) alone.
  const SignificanceAnalyzer serial(graph, options);
  const SignificanceAnalyzer::MotifReport base = serial.Analyze(m33);

  // Same report regardless of pool size...
  for (const int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    SignificanceAnalyzer::Options pooled = options;
    pooled.pool = &pool;
    const SignificanceAnalyzer analyzer(graph, pooled);
    const SignificanceAnalyzer::MotifReport report = analyzer.Analyze(m33);
    EXPECT_EQ(report.random_counts, base.random_counts)
        << "threads=" << threads;
    EXPECT_EQ(report.real_count, base.real_count) << "threads=" << threads;
  }

  // ...and regardless of which motif the analyzer saw first.
  const SignificanceAnalyzer fresh(graph, options);
  (void)fresh.Analyze(m54);
  EXPECT_EQ(fresh.Analyze(m33).random_counts, base.random_counts);
  const std::vector<SignificanceAnalyzer::MotifReport> all =
      fresh.AnalyzeAll({m54, m33});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1].random_counts, base.random_counts);
}

TEST(FlowPermutationTest, DeepCopyOwnsFreshStorageWithEqualContent) {
  const TimeSeriesGraph graph = RandomGraph(5, 5, 60, 30);
  const TimeSeriesGraph copy = graph.DeepCopy();

  EXPECT_NE(copy.topology_identity(), graph.topology_identity());
  ASSERT_EQ(copy.num_pairs(), graph.num_pairs());
  EXPECT_EQ(copy.num_vertices(), graph.num_vertices());
  for (int64_t p = 0; p < graph.num_pairs(); ++p) {
    const EdgeSeries& a = graph.pair(static_cast<size_t>(p)).series;
    const EdgeSeries& b = copy.pair(static_cast<size_t>(p)).series;
    EXPECT_NE(b.timestamp_identity(), a.timestamp_identity());
    EXPECT_EQ(b.times(), a.times());
    EXPECT_EQ(b.flows(), a.flows());
  }
}

TEST(FlowPermutationTest, EdgeSeriesWithFlowsSharesIdentity) {
  const EdgeSeries series(
      {Interaction{3, 1.0}, Interaction{5, 2.0}, Interaction{5, 4.0},
       Interaction{9, 0.5}});
  const EdgeSeries view = series.WithFlows({4.0, 3.0, 1.0, 2.0});
  EXPECT_EQ(view.timestamp_identity(), series.timestamp_identity());
  EXPECT_EQ(&view.times(), &series.times());
  EXPECT_EQ(view.flow(0), 4.0);
  EXPECT_DOUBLE_EQ(view.TotalFlow(), 10.0);
  // Original untouched, prefix sums independent.
  EXPECT_EQ(series.flow(0), 1.0);
  EXPECT_DOUBLE_EQ(series.TotalFlow(), 7.5);
  // DeepCopy of a series re-homes the timestamps.
  const EdgeSeries copy = series.DeepCopy();
  EXPECT_NE(copy.timestamp_identity(), series.timestamp_identity());
  EXPECT_EQ(copy.times(), series.times());
}

}  // namespace
}  // namespace flowmotif
