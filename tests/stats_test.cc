#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace flowmotif {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(Mean({}), 0.0); }

TEST(StatsTest, MeanSimple) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({5}), 5.0);
}

TEST(StatsTest, StdDevOfConstantSampleIsZero) {
  EXPECT_EQ(StdDev({3, 3, 3, 3}), 0.0);
  EXPECT_EQ(StdDev({3}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
}

TEST(StatsTest, StdDevPopulationFormula) {
  // Population sd of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
  EXPECT_DOUBLE_EQ(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 17.5);
}

TEST(StatsTest, PercentileUnsortedInput) {
  std::vector<double> v{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
}

TEST(StatsTest, SummarizeComputesAllFields) {
  SampleSummary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, SummarizeEmptyIsZeroed) {
  SampleSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, ZScoreMatchesDefinition) {
  std::vector<double> sample{2, 4, 4, 4, 5, 5, 7, 9};  // mean 5, sd 2
  EXPECT_DOUBLE_EQ(ZScore(9.0, sample), 2.0);
  EXPECT_DOUBLE_EQ(ZScore(5.0, sample), 0.0);
  EXPECT_DOUBLE_EQ(ZScore(1.0, sample), -2.0);
}

TEST(StatsTest, ZScoreDegenerateSample) {
  std::vector<double> constant{5, 5, 5};
  EXPECT_EQ(ZScore(5.0, constant), 0.0);
  EXPECT_TRUE(std::isinf(ZScore(6.0, constant)));
  EXPECT_GT(ZScore(6.0, constant), 0.0);
  EXPECT_LT(ZScore(4.0, constant), 0.0);
}

TEST(StatsTest, EmpiricalPValueCountsGreaterOrEqual) {
  std::vector<double> sample{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(EmpiricalPValue(6.0, sample), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalPValue(3.0, sample), 0.6);  // 3,4,5
  EXPECT_DOUBLE_EQ(EmpiricalPValue(0.0, sample), 1.0);
}

TEST(StatsTest, ToStringRendersSummary) {
  SampleSummary s = Summarize({1, 2, 3});
  std::string text = ToString(s);
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("mean=2"), std::string::npos);
}

}  // namespace
}  // namespace flowmotif
