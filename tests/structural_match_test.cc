#include "core/structural_match.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/motif_catalog.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;
using testing_util::PaperFig2Graph;

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)"); }
Motif Chain3() { return *Motif::FromSpanningPath({0, 1, 2}, "M(3,2)"); }

TEST(StructuralMatchTest, PaperFig6HasExactlySixMatchesOfM33) {
  TimeSeriesGraph g = PaperFig2Graph();
  StructuralMatcher matcher(g, M33());
  std::vector<MatchBinding> matches = matcher.FindAllMatches();
  ASSERT_EQ(matches.size(), 6u);

  // Two triangles, each contributing three rotations. Binding is
  // (node0, node1, node2) as graph vertices; u1=0, u2=1, u3=2, u4=3.
  std::set<MatchBinding> expected{
      {0, 1, 2}, {1, 2, 0}, {2, 0, 1},  // u1->u2->u3->u1
      {1, 2, 3}, {2, 3, 1}, {3, 1, 2},  // u2->u3->u4->u2
  };
  std::set<MatchBinding> actual(matches.begin(), matches.end());
  EXPECT_EQ(actual, expected);
}

TEST(StructuralMatchTest, CountMatchesAgreesWithFindAll) {
  TimeSeriesGraph g = PaperFig2Graph();
  for (const Motif& motif : MotifCatalog::All()) {
    StructuralMatcher matcher(g, motif);
    EXPECT_EQ(matcher.CountMatches(),
              static_cast<int64_t>(matcher.FindAllMatches().size()))
        << motif.name();
  }
}

TEST(StructuralMatchTest, ChainMatchesOnPaperGraph) {
  TimeSeriesGraph g = PaperFig2Graph();
  StructuralMatcher matcher(g, Chain3());
  std::vector<MatchBinding> matches = matcher.FindAllMatches();
  // Every match must map motif edges onto existing pairs with distinct
  // vertices.
  for (const MatchBinding& m : matches) {
    EXPECT_TRUE(matcher.IsMatch(m));
  }
  // Spot-check a known 2-path: u3->u1->u2 (2,0,1).
  EXPECT_NE(std::find(matches.begin(), matches.end(),
                      MatchBinding{2, 0, 1}),
            matches.end());
  // u1->u2->u1 would not be injective; u2->u3->u4 (1,2,3) exists.
  EXPECT_NE(std::find(matches.begin(), matches.end(),
                      MatchBinding{1, 2, 3}),
            matches.end());
}

TEST(StructuralMatchTest, InjectivityExcludesTwoCycleAsChain) {
  // 0->1->0: a chain match would need node2 == node0, which injectivity
  // forbids.
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0}, {1, 0, 2, 1.0}});
  StructuralMatcher matcher(g, Chain3());
  EXPECT_EQ(matcher.CountMatches(), 0);
}

TEST(StructuralMatchTest, TwoCycleMotifMatchesBothRotations) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0}, {1, 0, 2, 1.0}});
  Motif two_cycle = *Motif::FromSpanningPath({0, 1, 0});
  StructuralMatcher matcher(g, two_cycle);
  std::vector<MatchBinding> matches = matcher.FindAllMatches();
  std::set<MatchBinding> actual(matches.begin(), matches.end());
  EXPECT_EQ(actual, (std::set<MatchBinding>{{0, 1}, {1, 0}}));
}

TEST(StructuralMatchTest, EmptyGraphHasNoMatches) {
  TimeSeriesGraph g = TimeSeriesGraph::Build(InteractionGraph());
  StructuralMatcher matcher(g, Chain3());
  EXPECT_EQ(matcher.CountMatches(), 0);
}

TEST(StructuralMatchTest, SelfLoopsNeverMatch) {
  TimeSeriesGraph g = MakeGraph({{0, 0, 1, 1.0}, {0, 1, 2, 1.0},
                                 {1, 1, 3, 1.0}});
  Motif edge = *Motif::FromSpanningPath({0, 1});
  StructuralMatcher matcher(g, edge);
  std::vector<MatchBinding> matches = matcher.FindAllMatches();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (MatchBinding{0, 1}));
}

TEST(StructuralMatchTest, VisitorEarlyStop) {
  TimeSeriesGraph g = PaperFig2Graph();
  StructuralMatcher matcher(g, M33());
  int visited = 0;
  matcher.FindAll([&visited](const MatchBinding&) {
    ++visited;
    return visited < 2;  // stop after the second match
  });
  EXPECT_EQ(visited, 2);
}

TEST(StructuralMatchTest, MatchesAreDeterministic) {
  TimeSeriesGraph g = PaperFig2Graph();
  StructuralMatcher matcher(g, M33());
  EXPECT_EQ(matcher.FindAllMatches(), matcher.FindAllMatches());
}

TEST(StructuralMatchTest, IsMatchRejectsBadBindings) {
  TimeSeriesGraph g = PaperFig2Graph();
  StructuralMatcher matcher(g, M33());
  EXPECT_FALSE(matcher.IsMatch({0, 1}));        // wrong size
  EXPECT_FALSE(matcher.IsMatch({0, 1, 1}));     // not injective
  EXPECT_FALSE(matcher.IsMatch({0, 1, 99}));    // out of range
  EXPECT_FALSE(matcher.IsMatch({0, 2, 1}));     // u1->u3 missing
  EXPECT_TRUE(matcher.IsMatch({0, 1, 2}));
}

TEST(StructuralMatchTest, FourCycleMotif) {
  // Square 0->1->2->3->0 plus a chord; M(4,4)A should find 4 rotations.
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0},
                                 {1, 2, 2, 1.0},
                                 {2, 3, 3, 1.0},
                                 {3, 0, 4, 1.0},
                                 {0, 2, 5, 1.0}});
  Motif square = *MotifCatalog::ByName("M(4,4)A");
  StructuralMatcher matcher(g, square);
  EXPECT_EQ(matcher.CountMatches(), 4);
}

TEST(StructuralMatchTest, TailIntoCycleMotif) {
  // M(4,4)B = 0-1-2-3-1: tail 0->1 into triangle 1->2->3->1.
  TimeSeriesGraph g = MakeGraph({{9, 1, 1, 1.0},   // tail
                                 {1, 2, 2, 1.0},
                                 {2, 3, 3, 1.0},
                                 {3, 1, 4, 1.0}});
  Motif motif = *MotifCatalog::ByName("M(4,4)B");
  StructuralMatcher matcher(g, motif);
  std::vector<MatchBinding> matches = matcher.FindAllMatches();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (MatchBinding{9, 1, 2, 3}));
}

}  // namespace
}  // namespace flowmotif
