#include "core/multi_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/motif_catalog.h"
#include "core/structural_match.h"
#include "gen/presets.h"
#include "graph/interaction_graph.h"
#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig2Graph;

TEST(MultiMatcherTest, RejectsBadMotifSets) {
  TimeSeriesGraph g = PaperFig2Graph();
  EXPECT_FALSE(MultiStructuralMatcher::Create(g, {}).ok());

  // Non-path motif.
  Motif fan = *Motif::FromEdgeList({{0, 1}, {0, 2}});
  EXPECT_FALSE(MultiStructuralMatcher::Create(g, {fan}).ok());

  // Non-canonical labels: path starts at node 1.
  Motif shifted = *Motif::FromSpanningPath({1, 0, 2});
  EXPECT_FALSE(MultiStructuralMatcher::Create(g, {shifted}).ok());
}

TEST(MultiMatcherTest, WholeCatalogAgreesWithSingleMatcher) {
  TimeSeriesGraph g = PaperFig2Graph();
  StatusOr<MultiStructuralMatcher> multi =
      MultiStructuralMatcher::Create(g, MotifCatalog::All());
  ASSERT_TRUE(multi.ok()) << multi.status();

  std::vector<int64_t> shared_counts = multi->CountAll();
  ASSERT_EQ(shared_counts.size(), MotifCatalog::All().size());
  for (size_t i = 0; i < MotifCatalog::All().size(); ++i) {
    StructuralMatcher single(g, MotifCatalog::All()[i]);
    EXPECT_EQ(shared_counts[i], single.CountMatches())
        << MotifCatalog::All()[i].name();
  }
}

TEST(MultiMatcherTest, BindingsMatchSingleMatcherExactly) {
  TimeSeriesGraph g = PaperFig2Graph();
  std::vector<Motif> motifs{*MotifCatalog::ByName("M(3,2)"),
                            *MotifCatalog::ByName("M(3,3)"),
                            *MotifCatalog::ByName("M(4,3)")};
  StatusOr<MultiStructuralMatcher> multi =
      MultiStructuralMatcher::Create(g, motifs);
  ASSERT_TRUE(multi.ok());

  std::map<size_t, std::set<MatchBinding>> shared;
  multi->FindAll([&shared](size_t idx, const MatchBinding& binding) {
    EXPECT_TRUE(shared[idx].insert(binding).second)
        << "duplicate match for motif " << idx;
    return true;
  });

  for (size_t i = 0; i < motifs.size(); ++i) {
    std::vector<MatchBinding> singles =
        StructuralMatcher(g, motifs[i]).FindAllMatches();
    std::set<MatchBinding> expected(singles.begin(), singles.end());
    EXPECT_EQ(shared[i], expected) << motifs[i].name();
  }
}

TEST(MultiMatcherTest, AgreesOnRandomGraphs) {
  for (uint64_t seed : {10u, 11u}) {
    Rng rng(seed);
    InteractionGraph mg;
    mg.EnsureVertices(10);
    for (int i = 0; i < 120; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(10));
      VertexId v = static_cast<VertexId>(rng.NextBounded(10));
      if (u == v) continue;
      (void)mg.AddEdge(u, v, static_cast<Timestamp>(i), 1.0);
    }
    TimeSeriesGraph g = TimeSeriesGraph::Build(mg);
    StatusOr<MultiStructuralMatcher> multi =
        MultiStructuralMatcher::Create(g, MotifCatalog::All());
    ASSERT_TRUE(multi.ok());
    std::vector<int64_t> counts = multi->CountAll();
    for (size_t i = 0; i < MotifCatalog::All().size(); ++i) {
      EXPECT_EQ(counts[i],
                StructuralMatcher(g, MotifCatalog::All()[i]).CountMatches())
          << MotifCatalog::All()[i].name() << " seed=" << seed;
    }
  }
}

TEST(MultiMatcherTest, TrieSharesPrefixes) {
  TimeSeriesGraph g = PaperFig2Graph();
  // The three chains are prefixes of one another: the trie needs just
  // one branch of 6 nodes (5 path entries + root... M(5,4) has 5 path
  // entries -> root + 5 = 6).
  std::vector<Motif> chains{*MotifCatalog::ByName("M(3,2)"),
                            *MotifCatalog::ByName("M(4,3)"),
                            *MotifCatalog::ByName("M(5,4)")};
  StatusOr<MultiStructuralMatcher> multi =
      MultiStructuralMatcher::Create(g, chains);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->num_trie_nodes(), 6);

  // Separate motifs would need 3 + 4 + 5 = 12 non-root nodes; sharing
  // brings the whole catalog well under the sum of its path lengths.
  StatusOr<MultiStructuralMatcher> full =
      MultiStructuralMatcher::Create(g, MotifCatalog::All());
  ASSERT_TRUE(full.ok());
  int64_t total_entries = 0;
  for (const Motif& m : MotifCatalog::All()) {
    total_entries += static_cast<int64_t>(m.path().size());
  }
  EXPECT_LT(full->num_trie_nodes(), total_entries / 2);
}

TEST(MultiMatcherTest, EarlyStopPropagates) {
  TimeSeriesGraph g = PaperFig2Graph();
  StatusOr<MultiStructuralMatcher> multi =
      MultiStructuralMatcher::Create(g, MotifCatalog::All());
  ASSERT_TRUE(multi.ok());
  int seen = 0;
  multi->FindAll([&seen](size_t, const MatchBinding&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3);
}

TEST(MultiMatcherTest, WorksOnGeneratedDataset) {
  TimeSeriesGraph g =
      GenerateDataset(GetPreset(DatasetKind::kPassenger), 0.2);
  StatusOr<MultiStructuralMatcher> multi =
      MultiStructuralMatcher::Create(g, MotifCatalog::All());
  ASSERT_TRUE(multi.ok());
  std::vector<int64_t> counts = multi->CountAll();
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i],
              StructuralMatcher(g, MotifCatalog::All()[i]).CountMatches());
  }
}

}  // namespace
}  // namespace flowmotif
