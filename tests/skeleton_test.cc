// What a recorded enumeration skeleton promises (core/skeleton.h):
//  * replaying the trace against the real graph's prefix arena
//    reproduces the enumeration's instance count exactly — paper
//    graphs, seeded random graphs, every catalog motif;
//  * the trace is phi-free: one recording answers any phi threshold,
//    and the EvaluateFlows/CountWithFlows split answers a whole phi
//    grid from one flow evaluation;
//  * the trace is flow-free: one recording answers any flow assignment
//    over the same timestamps, so replaying permuted arenas equals
//    enumerating the corresponding WithPermutedFlows views;
//  * FlowPermutationStream consumes the RNG stream exactly as
//    WithPermutedFlows does — permutation i carries view i's flows;
//  * the trace budget turns recording into a clean bypass (false, no
//    skeleton), and arenas are gated on topology identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "core/skeleton.h"
#include "core/structural_match.h"
#include "core/window_cursor.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;
using testing_util::PaperFig2Graph;
using testing_util::PaperFig7Graph;

TimeSeriesGraph RandomGraph(uint64_t seed, int num_vertices,
                            int num_interactions, Timestamp time_span) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < num_interactions; ++i) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (dst == src) dst = (dst + 1) % num_vertices;
    const auto t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(time_span)));
    // Integer flows keep every comparison exact across orderings.
    const Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(6));
    const Status s = g.AddEdge(src, dst, t, f);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return TimeSeriesGraph::Build(g);
}

std::vector<Flow> AllFlows(const TimeSeriesGraph& graph) {
  std::vector<Flow> flows;
  for (const TimeSeriesGraph::PairEdge& pe : graph.pairs()) {
    for (size_t i = 0; i < pe.series.size(); ++i) {
      flows.push_back(pe.series.flow(i));
    }
  }
  return flows;
}

/// The enumeration oracle: full Algorithm 1 count at (delta, phi).
int64_t OracleCount(const TimeSeriesGraph& graph, const Motif& motif,
                    const std::vector<MatchBinding>& matches, Timestamp delta,
                    Flow phi) {
  EnumerationOptions opts;
  opts.delta = delta;
  opts.phi = phi;
  const FlowMotifEnumerator enumerator(graph, motif, opts);
  return enumerator.RunOnMatches(matches).num_instances;
}

TEST(SkeletonTest, ReplayMatchesEnumeratorOnPaperGraphs) {
  for (const TimeSeriesGraph& graph : {PaperFig2Graph(), PaperFig7Graph()}) {
    for (const Motif& motif : MotifCatalog::All()) {
      const StructuralMatcher matcher(graph, motif);
      const std::vector<MatchBinding> matches = matcher.FindAllMatches();
      for (const Timestamp delta : {0, 5, 10, 25}) {
        SharedWindowCache cache(delta);
        EnumerationSkeleton skeleton;
        ASSERT_TRUE(
            skeleton.Record(graph, motif, delta, matches, &cache));
        FlowPrefixArena arena;
        arena.FillFromGraph(graph);
        SkeletonReplayer replayer(&skeleton);
        for (const Flow phi : {0.0, 3.0, 5.0, 8.0, 100.0}) {
          EXPECT_EQ(replayer.Count(arena, phi),
                    OracleCount(graph, motif, matches, delta, phi))
              << motif.name() << " delta=" << delta << " phi=" << phi;
        }
      }
    }
  }
}

TEST(SkeletonTest, ReplayMatchesEnumeratorOnSeededRandomGraphs) {
  for (const uint64_t seed : {3u, 11u, 29u, 47u}) {
    const TimeSeriesGraph graph = RandomGraph(seed, 6, 90, 50);
    for (const Motif& motif : MotifCatalog::All()) {
      const StructuralMatcher matcher(graph, motif);
      const std::vector<MatchBinding> matches = matcher.FindAllMatches();
      for (const Timestamp delta : {4, 12}) {
        SharedWindowCache cache(delta);
        EnumerationSkeleton skeleton;
        ASSERT_TRUE(
            skeleton.Record(graph, motif, delta, matches, &cache));
        FlowPrefixArena arena;
        arena.FillFromGraph(graph);
        SkeletonReplayer replayer(&skeleton);
        for (const Flow phi : {0.0, 2.0, 4.0, 9.0}) {
          EXPECT_EQ(replayer.Count(arena, phi),
                    OracleCount(graph, motif, matches, delta, phi))
              << "seed=" << seed << " " << motif.name() << " delta=" << delta
              << " phi=" << phi;
        }
      }
    }
  }
}

TEST(SkeletonTest, PhiSweepOnOneRecordingMatchesPerPhiEnumeration) {
  const TimeSeriesGraph graph = RandomGraph(17, 6, 110, 60);
  const Motif motif = *MotifCatalog::ByName("M(4,3)");
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  const Timestamp delta = 10;

  SharedWindowCache cache(delta);
  EnumerationSkeleton skeleton;
  ASSERT_TRUE(skeleton.Record(graph, motif, delta, matches, &cache));
  FlowPrefixArena arena;
  arena.FillFromGraph(graph);
  SkeletonReplayer replayer(&skeleton);

  // One flow evaluation serves the whole phi grid.
  replayer.EvaluateFlows(arena);
  for (const Flow phi : {0.0, 1.0, 2.0, 3.5, 5.0, 7.0, 11.0, 50.0}) {
    EXPECT_EQ(replayer.CountWithFlows(phi),
              OracleCount(graph, motif, matches, delta, phi))
        << "phi=" << phi;
    // The split path equals the fused single-phi pass.
    EXPECT_EQ(replayer.CountWithFlows(phi), replayer.Count(arena, phi));
  }
}

TEST(SkeletonTest, PermutationStreamMatchesWithPermutedFlows) {
  for (const uint64_t seed : {7u, 99u}) {
    const TimeSeriesGraph graph = RandomGraph(seed * 13 + 1, 7, 120, 70);
    FlowPermutationStream stream(graph, seed);
    Rng rng(seed);
    std::vector<Flow> flows;
    for (int draw = 0; draw < 5; ++draw) {
      stream.NextPermutationInto(&flows);
      const TimeSeriesGraph view = graph.WithPermutedFlows(&rng);
      EXPECT_EQ(flows, AllFlows(view)) << "seed=" << seed << " draw=" << draw;
    }
  }
}

TEST(SkeletonTest, ReplayOnPermutedArenasMatchesEnumerationOnViews) {
  const TimeSeriesGraph graph = RandomGraph(23, 6, 100, 55);
  const Motif motif = *MotifCatalog::ByName("M(3,3)");
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  const Timestamp delta = 9;
  const Flow phi = 4.0;

  SharedWindowCache cache(delta);
  EnumerationSkeleton skeleton;
  ASSERT_TRUE(skeleton.Record(graph, motif, delta, matches, &cache));
  SkeletonReplayer replayer(&skeleton);
  FlowPrefixArena arena;

  FlowPermutationStream stream(graph, 4242);
  Rng rng(4242);
  std::vector<Flow> flows;
  for (int draw = 0; draw < 4; ++draw) {
    stream.NextPermutationInto(&flows);
    arena.FillFromFlows(graph, flows);
    // The view shares the graph's timestamps, so the one recording made
    // on the real graph serves the view's flow assignment.
    const TimeSeriesGraph view = graph.WithPermutedFlows(&rng);
    EXPECT_EQ(replayer.Count(arena, phi),
              OracleCount(view, motif, matches, delta, phi))
        << "draw=" << draw;
  }
}

TEST(SkeletonTest, TraceBudgetBypassesRecordingCleanly) {
  const TimeSeriesGraph graph = PaperFig7Graph();
  const Motif motif = *MotifCatalog::ByName("M(3,3)");
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();

  EnumerationSkeleton skeleton;
  EnumerationSkeleton::Options tiny;
  tiny.max_edges = 1;
  EXPECT_FALSE(skeleton.Record(graph, motif, 20, matches, nullptr, tiny));
  EXPECT_FALSE(skeleton.recorded());
  EXPECT_EQ(skeleton.num_edges(), 0u);

  // The same object records fine once the budget allows it.
  ASSERT_TRUE(skeleton.Record(graph, motif, 20, matches, nullptr));
  EXPECT_TRUE(skeleton.recorded());
  EXPECT_GT(skeleton.num_edges(), 0u);
  FlowPrefixArena arena;
  arena.FillFromGraph(graph);
  SkeletonReplayer replayer(&skeleton);
  EXPECT_EQ(replayer.Count(arena, 0.0),
            OracleCount(graph, motif, matches, 20, 0.0));
}

TEST(SkeletonTest, ArenaAndReplayGateOnTopologyIdentity) {
  const TimeSeriesGraph graph = RandomGraph(31, 5, 60, 40);
  const TimeSeriesGraph copy = graph.DeepCopy();  // fresh identity
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();

  EnumerationSkeleton skeleton;
  ASSERT_TRUE(skeleton.Record(graph, motif, 8, matches, nullptr));
  EXPECT_EQ(skeleton.topology_identity(), graph.topology_identity());

  // An arena filled from a different topology identity must not be
  // replayed against this recording, and an arena must not be refilled
  // across identities.
  FlowPrefixArena copy_arena;
  copy_arena.FillFromGraph(copy);
  SkeletonReplayer replayer(&skeleton);
  EXPECT_DEATH(replayer.Count(copy_arena, 0.0), "Check failed");
  FlowPrefixArena arena;
  arena.FillFromGraph(graph);
  EXPECT_DEATH(arena.FillFromGraph(copy), "Check failed");
}

TEST(SkeletonTest, EmptyMatchListRecordsAndCountsZero) {
  const TimeSeriesGraph graph = PaperFig2Graph();
  const Motif motif = *MotifCatalog::ByName("M(3,3)");
  EnumerationSkeleton skeleton;
  ASSERT_TRUE(skeleton.Record(graph, motif, 10, {}, nullptr));
  EXPECT_EQ(skeleton.num_roots(), 0u);
  FlowPrefixArena arena;
  arena.FillFromGraph(graph);
  SkeletonReplayer replayer(&skeleton);
  EXPECT_EQ(replayer.Count(arena, 0.0), 0);
}

}  // namespace
}  // namespace flowmotif
