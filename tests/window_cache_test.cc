// Property tests of core/window_cursor.h's SharedWindowCache: lists
// served from the cache are identical to uncached ComputeProcessedWindows
// results under concurrent readers (threads {2, 4, 8}), racing inserts
// of the same pair deduplicate to one stable pointer, and the size cap
// saturates — Get declines new pairs without ever evicting one a
// reader may still hold.
#include "core/window_cursor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/motif_catalog.h"
#include "core/sliding_window.h"
#include "graph/time_series_graph.h"
#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

/// Random graph with enough distinct pair edges to exercise many cache
/// keys.
TimeSeriesGraph RandomGraph(uint64_t seed, int num_vertices,
                            int num_interactions, Timestamp time_span) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < num_interactions; ++i) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (dst == src) dst = (dst + 1) % num_vertices;
    const auto t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(time_span)));
    const Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(5));
    const Status s = g.AddEdge(src, dst, t, f);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return TimeSeriesGraph::Build(g);
}

/// Every ordered pair of distinct pair-edge series in the graph — the
/// key population the evaluation paths present to the cache.
std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> AllSeriesPairs(
    const TimeSeriesGraph& graph) {
  std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs;
  for (int64_t a = 0; a < graph.num_pairs(); ++a) {
    for (int64_t b = 0; b < graph.num_pairs(); ++b) {
      pairs.emplace_back(&graph.pair(static_cast<size_t>(a)).series,
                         &graph.pair(static_cast<size_t>(b)).series);
    }
  }
  return pairs;
}

TEST(SharedWindowCacheTest, ServesExactWindowLists) {
  const TimeSeriesGraph graph = RandomGraph(11, 5, 70, 40);
  for (const Timestamp delta : {Timestamp{0}, Timestamp{5}, Timestamp{20}}) {
    SharedWindowCache cache(delta);
    for (const auto& [first, last] : AllSeriesPairs(graph)) {
      const std::vector<Window>* cached = cache.Get(*first, *last);
      ASSERT_NE(cached, nullptr);
      EXPECT_EQ(*cached, ComputeProcessedWindows(*first, *last, delta));
      // A second lookup returns the very same published list.
      EXPECT_EQ(cache.Get(*first, *last), cached);
    }
  }
}

TEST(SharedWindowCacheTest, ConcurrentReadersSeeIdenticalLists) {
  // Many threads hammer the same key population — every thread races
  // both the builds and the reads — and each must observe exactly the
  // uncached result for every pair, every time.
  const TimeSeriesGraph graph = RandomGraph(23, 6, 90, 50);
  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  constexpr Timestamp kDelta = 8;

  std::vector<std::vector<Window>> expected;
  expected.reserve(pairs.size());
  for (const auto& [first, last] : pairs) {
    expected.push_back(ComputeProcessedWindows(*first, *last, kDelta));
  }

  for (int num_threads : {2, 4, 8}) {
    SharedWindowCache cache(kDelta);
    std::atomic<int64_t> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      // Each thread starts at a different offset so builds and reads of
      // the same pair interleave across threads.
      threads.emplace_back([&, t] {
        const size_t n = pairs.size();
        for (int round = 0; round < 3; ++round) {
          for (size_t i = 0; i < n; ++i) {
            const size_t at = (i + static_cast<size_t>(t) * n /
                                       static_cast<size_t>(num_threads)) %
                              n;
            const std::vector<Window>* got =
                cache.Get(*pairs[at].first, *pairs[at].second);
            if (got == nullptr || *got != expected[at]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0) << "threads=" << num_threads;
    EXPECT_EQ(cache.size(), pairs.size()) << "threads=" << num_threads;
  }
}

TEST(SharedWindowCacheTest, RacingInsertsDeduplicateToOnePointer) {
  // All threads request the same single pair; whoever loses the CAS
  // race must adopt the winner's list, so every thread ends up with the
  // one published pointer and the size counter settles at 1.
  const TimeSeriesGraph graph = RandomGraph(31, 4, 50, 30);
  const EdgeSeries& first = graph.pair(0).series;
  const EdgeSeries& last =
      graph.pair(static_cast<size_t>(graph.num_pairs()) - 1).series;

  for (int num_threads : {2, 4, 8}) {
    SharedWindowCache cache(/*delta=*/10);
    std::vector<const std::vector<Window>*> seen(
        static_cast<size_t>(num_threads), nullptr);
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back(
          [&, t] { seen[static_cast<size_t>(t)] = cache.Get(first, last); });
    }
    for (std::thread& thread : threads) thread.join();
    for (int t = 0; t < num_threads; ++t) {
      ASSERT_NE(seen[static_cast<size_t>(t)], nullptr);
      EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
    }
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(*seen[0], ComputeProcessedWindows(first, last, 10));
  }
}

TEST(SharedWindowCacheTest, SizeCapSaturatesWithoutEvicting) {
  const TimeSeriesGraph graph = RandomGraph(47, 6, 80, 40);
  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  constexpr size_t kCap = 4;
  ASSERT_GT(pairs.size(), kCap);

  SharedWindowCache cache(/*delta=*/6, kCap);
  // The first kCap distinct pairs publish; remember their pointers.
  std::vector<const std::vector<Window>*> published;
  for (size_t i = 0; i < kCap; ++i) {
    const std::vector<Window>* got =
        cache.Get(*pairs[i].first, *pairs[i].second);
    ASSERT_NE(got, nullptr);
    published.push_back(got);
  }
  EXPECT_EQ(cache.size(), kCap);

  // Every further pair is declined — never published, never evicting.
  for (size_t i = kCap; i < pairs.size(); ++i) {
    EXPECT_EQ(cache.Get(*pairs[i].first, *pairs[i].second), nullptr);
  }
  EXPECT_EQ(cache.size(), kCap);

  // The original entries survive saturation, at their original
  // addresses, with their original contents.
  for (size_t i = 0; i < kCap; ++i) {
    const std::vector<Window>* got =
        cache.Get(*pairs[i].first, *pairs[i].second);
    EXPECT_EQ(got, published[i]);
    EXPECT_EQ(*got,
              ComputeProcessedWindows(*pairs[i].first, *pairs[i].second, 6));
  }
}

TEST(SharedWindowCacheTest, EnsembleViewsHitTheSameEntries) {
  // The cache keys on timestamp-storage identity, so the real graph and
  // its flow-permuted views must share entries: a list published for a
  // pair of the real graph is returned — same pointer — for the
  // corresponding pair of every view, and serving two views inserts
  // nothing new.
  const TimeSeriesGraph graph = RandomGraph(61, 5, 70, 40);
  Rng rng(17);
  const TimeSeriesGraph view_a = graph.WithPermutedFlows(&rng);
  const TimeSeriesGraph view_b = graph.WithPermutedFlows(&rng);
  constexpr Timestamp kDelta = 9;

  SharedWindowCache cache(kDelta, SharedWindowCache::kDefaultMaxEntries,
                          /*cross_graph=*/true);
  EXPECT_TRUE(cache.cross_graph());

  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  std::vector<const std::vector<Window>*> published;
  published.reserve(pairs.size());
  for (const auto& [first, last] : pairs) {
    published.push_back(cache.Get(*first, *last));
    ASSERT_NE(published.back(), nullptr);
  }
  const size_t size_after_real = cache.size();
  EXPECT_EQ(size_after_real, pairs.size());

  for (const TimeSeriesGraph* view : {&view_a, &view_b}) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      // The corresponding pair on the view: same pair indices, so the
      // series share timestamp identity with the real graph's.
      const size_t a = i / static_cast<size_t>(graph.num_pairs());
      const size_t b = i % static_cast<size_t>(graph.num_pairs());
      const EdgeSeries& first = view->pair(a).series;
      const EdgeSeries& last = view->pair(b).series;
      EXPECT_EQ(cache.Get(first, last), published[i])
          << "view pair " << a << "," << b;
    }
  }
  // No new entries were inserted for the views.
  EXPECT_EQ(cache.size(), size_after_real);
}

TEST(SharedWindowCacheTest, ConcurrentEnsembleReadersSeeIdenticalLists) {
  // Concurrent readers on the real graph and two permuted views: every
  // thread reads through a different graph of the ensemble, all must
  // observe exactly the uncached window list for the underlying
  // timestamp pair, and the entry population stays that of one graph.
  const TimeSeriesGraph graph = RandomGraph(67, 5, 80, 50);
  Rng rng(23);
  const TimeSeriesGraph view_a = graph.WithPermutedFlows(&rng);
  const TimeSeriesGraph view_b = graph.WithPermutedFlows(&rng);
  const TimeSeriesGraph* graphs[] = {&graph, &view_a, &view_b};
  constexpr Timestamp kDelta = 11;

  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  std::vector<std::vector<Window>> expected;
  expected.reserve(pairs.size());
  for (const auto& [first, last] : pairs) {
    expected.push_back(ComputeProcessedWindows(*first, *last, kDelta));
  }

  for (int num_threads : {2, 4, 8}) {
    SharedWindowCache cache(kDelta, SharedWindowCache::kDefaultMaxEntries,
                            /*cross_graph=*/true);
    std::atomic<int64_t> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        const TimeSeriesGraph& mine = *graphs[static_cast<size_t>(t) % 3];
        const size_t np = static_cast<size_t>(mine.num_pairs());
        for (int round = 0; round < 3; ++round) {
          for (size_t i = 0; i < np * np; ++i) {
            const size_t at =
                (i + static_cast<size_t>(t) * 7) % (np * np);
            const EdgeSeries& first = mine.pair(at / np).series;
            const EdgeSeries& last = mine.pair(at % np).series;
            const std::vector<Window>* got = cache.Get(first, last);
            if (got == nullptr || *got != expected[at]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0) << "threads=" << num_threads;
    EXPECT_EQ(cache.size(), pairs.size()) << "threads=" << num_threads;
  }
}

TEST(SharedWindowCacheTest, SaturationNeverEvictsUnderIdentityKey) {
  // Cap saturation with ensemble traffic: entries won by real-graph
  // pairs survive, view lookups of those pairs still hit at the original
  // addresses, and pairs beyond the cap are declined for every graph of
  // the ensemble without evicting anything.
  const TimeSeriesGraph graph = RandomGraph(71, 6, 80, 40);
  Rng rng(29);
  const TimeSeriesGraph view = graph.WithPermutedFlows(&rng);
  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  constexpr size_t kCap = 4;
  constexpr Timestamp kDelta = 6;
  ASSERT_GT(pairs.size(), kCap);

  SharedWindowCache cache(kDelta, kCap, /*cross_graph=*/true);
  std::vector<const std::vector<Window>*> published;
  for (size_t i = 0; i < kCap; ++i) {
    const std::vector<Window>* got =
        cache.Get(*pairs[i].first, *pairs[i].second);
    ASSERT_NE(got, nullptr);
    published.push_back(got);
  }
  EXPECT_EQ(cache.size(), kCap);

  const auto np = static_cast<size_t>(graph.num_pairs());
  // Beyond the cap: declined, from the real graph and the view alike.
  for (size_t i = kCap; i < pairs.size(); ++i) {
    EXPECT_EQ(cache.Get(*pairs[i].first, *pairs[i].second), nullptr);
    EXPECT_EQ(cache.Get(view.pair(i / np).series, view.pair(i % np).series),
              nullptr);
  }
  EXPECT_EQ(cache.size(), kCap);

  // The winners survive saturation at their original addresses — also
  // when requested through the view's series.
  for (size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(cache.Get(*pairs[i].first, *pairs[i].second), published[i]);
    EXPECT_EQ(cache.Get(view.pair(i / np).series, view.pair(i % np).series),
              published[i]);
  }
}

TEST(SharedWindowCacheTest, ConcurrentReadersUnderTinyCap) {
  // Saturation under concurrency: whatever subset wins the slots, every
  // non-null answer must still be exact and the size must respect the
  // cap at all times.
  const TimeSeriesGraph graph = RandomGraph(53, 6, 90, 50);
  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  constexpr Timestamp kDelta = 12;
  constexpr size_t kCap = 3;

  std::vector<std::vector<Window>> expected;
  expected.reserve(pairs.size());
  for (const auto& [first, last] : pairs) {
    expected.push_back(ComputeProcessedWindows(*first, *last, kDelta));
  }

  for (int num_threads : {2, 4, 8}) {
    SharedWindowCache cache(kDelta, kCap);
    std::atomic<int64_t> mismatches{0};
    std::atomic<int64_t> cap_violations{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        const size_t n = pairs.size();
        for (size_t i = 0; i < 2 * n; ++i) {
          const size_t at = (i * 31 + static_cast<size_t>(t) * 7) % n;
          const std::vector<Window>* got =
              cache.Get(*pairs[at].first, *pairs[at].second);
          if (got != nullptr && *got != expected[at]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          if (cache.size() > kCap) {
            cap_violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0) << "threads=" << num_threads;
    EXPECT_EQ(cap_violations.load(), 0) << "threads=" << num_threads;
    EXPECT_LE(cache.size(), kCap);
    EXPECT_GT(cache.size(), 0u);
  }
}

TEST(SharedWindowCacheTest, GenerationalServesExactListsUnderForcedRotation) {
  // A generational cache with a tiny per-generation cap is driven over a
  // key population far larger than the cap: every answer must still be
  // the exact uncached list, and the traffic must have forced rotations
  // (a saturating cache would have declined instead).
  const TimeSeriesGraph graph = RandomGraph(83, 6, 90, 50);
  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  constexpr Timestamp kDelta = 7;
  constexpr size_t kCap = 3;
  ASSERT_GT(pairs.size(), 2 * kCap);

  std::unique_ptr<SharedWindowCache> cache =
      SharedWindowCache::MakeGenerational(kDelta, kCap);
  EXPECT_TRUE(cache->generational());
  SharedWindowCache::TierLease lease = cache->AcquireTierLease();
  ASSERT_TRUE(lease.active());

  for (int round = 0; round < 2; ++round) {
    for (const auto& [first, last] : pairs) {
      const std::vector<Window>* got = cache->LeasedGet(&lease, *first, *last);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, ComputeProcessedWindows(*first, *last, kDelta));
    }
  }
  EXPECT_GT(cache->num_rotations(), 0);
  // Between rotations at most two generations are published.
  EXPECT_LE(cache->size(), 2 * kCap);
}

TEST(SharedWindowCacheTest, LeaseRetainsPointersAcrossRotations) {
  // Every pointer LeasedGet ever returned stays valid — with its
  // original contents — for the lease's whole lifetime, even after the
  // generations that own those nodes rotate out of the publication
  // path. This is the property the serving layer's per-query caches
  // rely on when the shared tier rotates underneath a running query.
  const TimeSeriesGraph graph = RandomGraph(89, 6, 90, 50);
  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  constexpr Timestamp kDelta = 9;
  constexpr size_t kCap = 2;

  std::unique_ptr<SharedWindowCache> cache =
      SharedWindowCache::MakeGenerational(kDelta, kCap);
  SharedWindowCache::TierLease lease = cache->AcquireTierLease();

  std::vector<const std::vector<Window>*> served;
  served.reserve(pairs.size());
  for (const auto& [first, last] : pairs) {
    served.push_back(cache->LeasedGet(&lease, *first, *last));
    ASSERT_NE(served.back(), nullptr);
  }
  ASSERT_GT(cache->num_rotations(), 0);

  // Re-verify every previously returned pointer after all rotations.
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(*served[i], ComputeProcessedWindows(*pairs[i].first,
                                                  *pairs[i].second, kDelta));
  }
}

TEST(SharedWindowCacheTest, PromotedPrevHitSurvivesRotationUntouchedDoesNot) {
  // The two-generation clock: an entry touched while in the previous
  // generation is promoted into the current one and survives the next
  // rotation; an untouched neighbor ages out and must be recomputed.
  const TimeSeriesGraph graph = RandomGraph(31, 4, 50, 30);
  ASSERT_GE(graph.num_pairs(), 4);
  const EdgeSeries& target = graph.pair(0).series;
  const EdgeSeries& filler_b = graph.pair(1).series;
  const EdgeSeries& filler_c = graph.pair(2).series;
  const EdgeSeries& filler_d = graph.pair(3).series;
  constexpr Timestamp kDelta = 10;

  std::unique_ptr<SharedWindowCache> cache =
      SharedWindowCache::MakeGenerational(kDelta, /*max_entries=*/2);
  SharedWindowCache::TierLease lease = cache->AcquireTierLease();

  // Generation 1 fills with {target, B}; C saturates it and rotates.
  ASSERT_NE(cache->LeasedGet(&lease, target, target), nullptr);
  ASSERT_NE(cache->LeasedGet(&lease, filler_b, filler_b), nullptr);
  ASSERT_NE(cache->LeasedGet(&lease, filler_c, filler_c), nullptr);
  ASSERT_EQ(cache->num_rotations(), 1);

  // Touch the target while it sits in the previous generation: a hit,
  // promoted into the current one.
  int64_t hits_before = cache->num_hits();
  ASSERT_NE(cache->LeasedGet(&lease, target, target), nullptr);
  EXPECT_EQ(cache->num_hits(), hits_before + 1);

  // D saturates the current generation {C, target-copy} and rotates
  // again; generation 1 (with untouched B) leaves the publication path.
  ASSERT_NE(cache->LeasedGet(&lease, filler_d, filler_d), nullptr);
  ASSERT_EQ(cache->num_rotations(), 2);

  // The promoted target still hits; untouched B misses (recomputed, so
  // still exact — just not a hit).
  hits_before = cache->num_hits();
  const std::vector<Window>* target_got =
      cache->LeasedGet(&lease, target, target);
  ASSERT_NE(target_got, nullptr);
  EXPECT_EQ(cache->num_hits(), hits_before + 1);
  EXPECT_EQ(*target_got, ComputeProcessedWindows(target, target, kDelta));

  hits_before = cache->num_hits();
  const std::vector<Window>* b_got =
      cache->LeasedGet(&lease, filler_b, filler_b);
  ASSERT_NE(b_got, nullptr);
  EXPECT_EQ(cache->num_hits(), hits_before);  // miss: aged out
  EXPECT_EQ(*b_got, ComputeProcessedWindows(filler_b, filler_b, kDelta));
}

TEST(SharedWindowCacheTest, SweepGenerationsKeepsLiveDropsDead) {
  // SweepGenerations rebuilds the generation pair keeping only entries
  // whose identities satisfy the predicate — the serving layer's
  // post-seal invalidation. Kept entries still hit through a fresh
  // lease; dropped ones are recomputed exactly; old leases keep their
  // pointers.
  const TimeSeriesGraph graph = RandomGraph(97, 5, 70, 40);
  ASSERT_GE(graph.num_pairs(), 2);
  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  constexpr Timestamp kDelta = 8;

  std::unique_ptr<SharedWindowCache> cache =
      SharedWindowCache::MakeGenerational(kDelta, /*max_entries=*/256);
  SharedWindowCache::TierLease old_lease = cache->AcquireTierLease();
  std::vector<const std::vector<Window>*> served;
  for (const auto& [first, last] : pairs) {
    served.push_back(cache->LeasedGet(&old_lease, *first, *last));
    ASSERT_NE(served.back(), nullptr);
  }
  EXPECT_EQ(cache->size(), pairs.size());

  // Keep only entries keyed entirely on pair 0's timestamp storage —
  // exactly the (0, 0) entry.
  const StorageIdentity live_id = graph.pair(0).series.timestamp_identity();
  cache->SweepGenerations([&](const StorageIdentity& id) {
    return id == live_id;
  });
  EXPECT_EQ(cache->size(), 1u);

  // A fresh lease sees the swept pair: the surviving entry hits, a
  // dropped one misses and is recomputed bit-exactly.
  SharedWindowCache::TierLease fresh = cache->AcquireTierLease();
  const EdgeSeries& live_series = graph.pair(0).series;
  int64_t hits_before = cache->num_hits();
  const std::vector<Window>* kept =
      cache->LeasedGet(&fresh, live_series, live_series);
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(cache->num_hits(), hits_before + 1);
  EXPECT_EQ(*kept, ComputeProcessedWindows(live_series, live_series, kDelta));

  const EdgeSeries& dead_series = graph.pair(1).series;
  hits_before = cache->num_hits();
  const std::vector<Window>* dropped =
      cache->LeasedGet(&fresh, dead_series, dead_series);
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(cache->num_hits(), hits_before);
  EXPECT_EQ(*dropped,
            ComputeProcessedWindows(dead_series, dead_series, kDelta));

  // The old lease's pointers are untouched by the sweep.
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(*served[i], ComputeProcessedWindows(*pairs[i].first,
                                                  *pairs[i].second, kDelta));
  }
}

TEST(SharedWindowCacheTest, ConcurrentLeasedReadersUnderTinyCap) {
  // Several threads, each with its own lease, hammer a key population
  // far beyond the per-generation cap so rotations race with lookups,
  // promotions, and inserts. Every answer must be non-null (a
  // generational cache never declines) and exact.
  const TimeSeriesGraph graph = RandomGraph(101, 6, 90, 50);
  const std::vector<std::pair<const EdgeSeries*, const EdgeSeries*>> pairs =
      AllSeriesPairs(graph);
  constexpr Timestamp kDelta = 12;
  constexpr size_t kCap = 3;

  std::vector<std::vector<Window>> expected;
  expected.reserve(pairs.size());
  for (const auto& [first, last] : pairs) {
    expected.push_back(ComputeProcessedWindows(*first, *last, kDelta));
  }

  for (int num_threads : {2, 4}) {
    std::unique_ptr<SharedWindowCache> cache =
        SharedWindowCache::MakeGenerational(kDelta, kCap);
    std::atomic<int64_t> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        SharedWindowCache::TierLease lease = cache->AcquireTierLease();
        const size_t n = pairs.size();
        for (int round = 0; round < 3; ++round) {
          for (size_t i = 0; i < n; ++i) {
            const size_t at = (i * 31 + static_cast<size_t>(t) * 7) % n;
            const std::vector<Window>* got =
                cache->LeasedGet(&lease, *pairs[at].first, *pairs[at].second);
            if (got == nullptr || *got != expected[at]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0) << "threads=" << num_threads;
    EXPECT_GT(cache->num_rotations(), 0) << "threads=" << num_threads;
  }
}

}  // namespace
}  // namespace flowmotif
