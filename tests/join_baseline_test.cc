#include "core/join_baseline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/enumerator.h"
#include "core/motif.h"
#include "core/motif_catalog.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;
using testing_util::PaperFig2Graph;
using testing_util::PaperFig7Graph;

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)"); }

std::vector<MotifInstance> CollectJoin(const TimeSeriesGraph& g,
                                       const Motif& motif, Timestamp delta,
                                       Flow phi) {
  JoinMotifEnumerator join(g, motif, delta, phi);
  std::vector<MotifInstance> out;
  join.Run([&out](const MotifInstance& instance) {
    out.push_back(instance);
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<MotifInstance> CollectTwoPhase(const TimeSeriesGraph& g,
                                           const Motif& motif,
                                           Timestamp delta, Flow phi) {
  EnumerationOptions options;
  options.delta = delta;
  options.phi = phi;
  FlowMotifEnumerator enumerator(g, motif, options);
  std::vector<MotifInstance> out = enumerator.CollectAll();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(JoinBaselineTest, MatchesTwoPhaseOnFig2) {
  TimeSeriesGraph g = PaperFig2Graph();
  EXPECT_EQ(CollectJoin(g, M33(), 10, 7.0), CollectTwoPhase(g, M33(), 10, 7.0));
  EXPECT_EQ(CollectJoin(g, M33(), 10, 0.0), CollectTwoPhase(g, M33(), 10, 0.0));
}

TEST(JoinBaselineTest, MatchesTwoPhaseOnFig7AllPhis) {
  TimeSeriesGraph g = PaperFig7Graph();
  for (Flow phi : {0.0, 3.0, 5.0, 7.0}) {
    EXPECT_EQ(CollectJoin(g, M33(), 10, phi),
              CollectTwoPhase(g, M33(), 10, phi))
        << "phi=" << phi;
  }
}

TEST(JoinBaselineTest, MatchesTwoPhaseAcrossCatalogOnFig2) {
  TimeSeriesGraph g = PaperFig2Graph();
  for (const Motif& motif : MotifCatalog::All()) {
    EXPECT_EQ(CollectJoin(g, motif, 10, 0.0),
              CollectTwoPhase(g, motif, 10, 0.0))
        << motif.name();
  }
}

TEST(JoinBaselineTest, QuintupleGenerationRespectsDeltaAndPhi) {
  // Series (10,1),(12,2),(30,4), delta 5, phi 0: runs within delta are
  // {10},{12},{30},{10,12} -> 4 quintuples.
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 12, 2.0},
                                 {0, 1, 30, 4.0}});
  Motif edge = *Motif::FromSpanningPath({0, 1});
  {
    JoinMotifEnumerator join(g, edge, 5, 0.0);
    EXPECT_EQ(join.Run().num_quintuples, 4);
  }
  {
    // phi = 2 drops the run {10} (flow 1).
    JoinMotifEnumerator join(g, edge, 5, 2.0);
    EXPECT_EQ(join.Run().num_quintuples, 3);
  }
}

TEST(JoinBaselineTest, SingleEdgeMotifMatchesTwoPhase) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 12, 2.0},
                                 {0, 1, 30, 4.0}});
  Motif edge = *Motif::FromSpanningPath({0, 1});
  EXPECT_EQ(CollectJoin(g, edge, 5, 0.0), CollectTwoPhase(g, edge, 5, 0.0));
  EXPECT_EQ(CollectJoin(g, edge, 5, 3.5), CollectTwoPhase(g, edge, 5, 3.5));
}

TEST(JoinBaselineTest, CycleClosureEnforced) {
  // A chain 0->1->2 with no closing edge has no M(3,3) instance.
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0}, {1, 2, 2, 1.0}});
  EXPECT_EQ(CollectJoin(g, M33(), 10, 0.0).size(), 0u);
}

TEST(JoinBaselineTest, InjectivityEnforced) {
  // 0->1->0 must not instantiate a 3-chain.
  TimeSeriesGraph g = MakeGraph({{0, 1, 1, 1.0}, {1, 0, 2, 1.0}});
  Motif chain = *Motif::FromSpanningPath({0, 1, 2});
  EXPECT_TRUE(CollectJoin(g, chain, 10, 0.0).empty());
}

TEST(JoinBaselineTest, CountOnlyRunAgreesWithVisitorRun) {
  TimeSeriesGraph g = PaperFig2Graph();
  JoinMotifEnumerator join(g, M33(), 10, 0.0);
  JoinMotifEnumerator::Result counted = join.Run();
  EXPECT_EQ(counted.num_instances,
            static_cast<int64_t>(CollectJoin(g, M33(), 10, 0.0).size()));
}

TEST(JoinBaselineTest, ProducesIntermediatePartials) {
  // The join algorithm's cost signature: intermediate sub-motif
  // instances are materialized (num_partials > num_instances).
  TimeSeriesGraph g = PaperFig2Graph();
  JoinMotifEnumerator join(g, M33(), 10, 0.0);
  JoinMotifEnumerator::Result result = join.Run();
  EXPECT_GT(result.num_quintuples, 0);
  EXPECT_GT(result.num_partials, result.num_instances);
}

TEST(JoinBaselineTest, VisitorEarlyStop) {
  TimeSeriesGraph g = PaperFig7Graph();
  JoinMotifEnumerator join(g, M33(), 10, 0.0);
  int seen = 0;
  join.Run([&seen](const MotifInstance&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1);
}

}  // namespace
}  // namespace flowmotif
