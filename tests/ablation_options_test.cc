// Tests for the ablation switches of EnumerationOptions: they must change
// only the amount of work (and the redundancy bookkeeping), never the
// reported instance set.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "graph/interaction_graph.h"
#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig7Graph;

InteractionGraph RandomMultigraph(uint64_t seed) {
  Rng rng(seed);
  InteractionGraph g;
  g.EnsureVertices(8);
  for (int i = 0; i < 150; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(8));
    VertexId v = static_cast<VertexId>(rng.NextBounded(8));
    if (u == v) continue;
    (void)g.AddEdge(u, v, static_cast<Timestamp>(rng.NextBounded(120)),
                    1.0 + static_cast<Flow>(rng.NextBounded(9)));
  }
  return g;
}

std::vector<MotifInstance> Collect(const TimeSeriesGraph& g,
                                   const Motif& motif,
                                   const EnumerationOptions& options) {
  FlowMotifEnumerator enumerator(g, motif, options);
  std::vector<MotifInstance> out = enumerator.CollectAll();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AblationOptionsTest, NoPrefixPhiPruningKeepsResults) {
  for (uint64_t seed : {31u, 32u}) {
    TimeSeriesGraph g = TimeSeriesGraph::Build(RandomMultigraph(seed));
    for (int motif_idx : {0, 1, 4}) {
      const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_idx)];
      EnumerationOptions options;
      options.delta = 30;
      options.phi = 6.0;
      std::vector<MotifInstance> pruned = Collect(g, motif, options);

      options.ablation_no_prefix_phi_pruning = true;
      std::vector<MotifInstance> unpruned = Collect(g, motif, options);
      EXPECT_EQ(pruned, unpruned) << motif.name() << " seed=" << seed;
    }
  }
}

TEST(AblationOptionsTest, NoPrefixPhiPruningReportsDeferredPrunes) {
  TimeSeriesGraph g = PaperFig7Graph();
  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0});
  EnumerationOptions options;
  options.delta = 10;
  options.phi = 5.0;
  options.ablation_no_prefix_phi_pruning = true;
  FlowMotifEnumerator enumerator(g, m33, options);
  EnumerationResult result = enumerator.Run();
  // The Fig. 7 match has exactly one phi=5 instance; deferred pruning
  // still rejects the sub-phi complete instances at emission.
  EXPECT_EQ(result.num_instances, 1);
  EXPECT_GT(result.num_phi_prunes, 0);
}

TEST(AblationOptionsTest, NoWindowSkipKeepsNonRedundantCount) {
  for (uint64_t seed : {41u, 42u}) {
    TimeSeriesGraph g = TimeSeriesGraph::Build(RandomMultigraph(seed));
    for (int motif_idx : {0, 1}) {
      const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_idx)];
      EnumerationOptions options;
      options.delta = 30;
      options.phi = 0.0;
      FlowMotifEnumerator baseline(g, motif, options);
      EnumerationResult with_skip = baseline.Run();

      options.ablation_no_window_skip = true;
      FlowMotifEnumerator ablated(g, motif, options);
      EnumerationResult without_skip = ablated.Run();

      // Every instance beyond the baseline's is flagged redundant.
      EXPECT_EQ(without_skip.num_instances -
                    without_skip.num_redundant_instances,
                with_skip.num_instances)
          << motif.name() << " seed=" << seed;
      EXPECT_GE(without_skip.num_windows_processed,
                with_skip.num_windows_processed);
    }
  }
}

TEST(AblationOptionsTest, SkippedWindowInstancesAreDuplicatesOrNonMaximal) {
  // On Fig. 7 the skipped windows [13,23] and [18,28] must not produce
  // any instance the processed windows did not (the paper's redundancy
  // argument): every redundant emission is either an exact duplicate or
  // a sub-instance of a kept one.
  TimeSeriesGraph g = PaperFig7Graph();
  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0});
  EnumerationOptions options;
  options.delta = 10;
  options.phi = 0.0;

  FlowMotifEnumerator baseline(g, m33, options);
  std::vector<MotifInstance> kept = baseline.CollectAll();

  options.ablation_no_window_skip = true;
  FlowMotifEnumerator ablated(g, m33, options);
  ablated.Run([&](const InstanceView& view) {
    MotifInstance instance = view.Materialize();
    const bool duplicate =
        std::find(kept.begin(), kept.end(), instance) != kept.end();
    const bool maximal = IsMaximalInstance(g, m33, instance, options.delta);
    EXPECT_TRUE(duplicate || !maximal) << instance.ToString();
    return true;
  });
}

TEST(AblationOptionsTest, RedundantCounterZeroWithoutAblation) {
  TimeSeriesGraph g = PaperFig7Graph();
  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0});
  EnumerationOptions options;
  options.delta = 10;
  options.phi = 0.0;
  EnumerationResult result = FlowMotifEnumerator(g, m33, options).Run();
  EXPECT_EQ(result.num_redundant_instances, 0);
}

}  // namespace
}  // namespace flowmotif
