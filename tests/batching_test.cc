#include "engine/batching.h"

#include <gtest/gtest.h>

namespace flowmotif {
namespace {

void ExpectContiguousCover(const std::vector<MatchBatch>& batches,
                           int64_t n) {
  int64_t expected_begin = 0;
  for (const MatchBatch& batch : batches) {
    EXPECT_EQ(batch.begin, expected_begin);
    EXPECT_GT(batch.end, batch.begin);
    expected_begin = batch.end;
  }
  EXPECT_EQ(expected_begin, n);
}

TEST(BatchingTest, EmptyInputYieldsNoBatches) {
  EXPECT_TRUE(PartitionMatches(0, 4).empty());
}

TEST(BatchingTest, SingleThreadIsOneBatch) {
  const auto batches = PartitionMatches(1000, 1);
  ASSERT_EQ(batches.size(), 1u);
  ExpectContiguousCover(batches, 1000);
}

TEST(BatchingTest, DerivedBatchesCoverAndGiveSlack) {
  for (int threads : {2, 4, 8}) {
    const auto batches = PartitionMatches(10000, threads);
    ExpectContiguousCover(batches, 10000);
    // Several batches per thread for load balancing.
    EXPECT_GE(static_cast<int>(batches.size()), threads);
  }
}

TEST(BatchingTest, FewerMatchesThanThreads) {
  const auto batches = PartitionMatches(3, 8);
  ExpectContiguousCover(batches, 3);
  for (const MatchBatch& batch : batches) EXPECT_EQ(batch.size(), 1);
}

TEST(BatchingTest, ExplicitBatchSizeRespected) {
  const auto batches = PartitionMatches(10, 4, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 4);
  EXPECT_EQ(batches[1].size(), 4);
  EXPECT_EQ(batches[2].size(), 2);
  ExpectContiguousCover(batches, 10);
}

TEST(BatchingTest, ExplicitBatchSizeAppliesToSingleThreadToo) {
  const auto batches = PartitionMatches(10, 1, 3);
  ASSERT_EQ(batches.size(), 4u);
  ExpectContiguousCover(batches, 10);
}

}  // namespace
}  // namespace flowmotif
