#include "engine/batching.h"

#include <gtest/gtest.h>

namespace flowmotif {
namespace {

void ExpectContiguousCover(const std::vector<MatchBatch>& batches,
                           int64_t n) {
  int64_t expected_begin = 0;
  for (const MatchBatch& batch : batches) {
    EXPECT_EQ(batch.begin, expected_begin);
    EXPECT_GT(batch.end, batch.begin);
    expected_begin = batch.end;
  }
  EXPECT_EQ(expected_begin, n);
}

TEST(BatchingTest, EmptyInputYieldsNoBatches) {
  EXPECT_TRUE(PartitionMatches(0, 4).empty());
}

TEST(BatchingTest, SingleThreadIsOneBatch) {
  const auto batches = PartitionMatches(1000, 1);
  ASSERT_EQ(batches.size(), 1u);
  ExpectContiguousCover(batches, 1000);
}

TEST(BatchingTest, DerivedBatchesCoverAndGiveSlack) {
  for (int threads : {2, 4, 8}) {
    const auto batches = PartitionMatches(10000, threads);
    ExpectContiguousCover(batches, 10000);
    // Several batches per thread for load balancing.
    EXPECT_GE(static_cast<int>(batches.size()), threads);
  }
}

TEST(BatchingTest, FewerMatchesThanThreads) {
  const auto batches = PartitionMatches(3, 8);
  ExpectContiguousCover(batches, 3);
  for (const MatchBatch& batch : batches) EXPECT_EQ(batch.size(), 1);
}

TEST(BatchingTest, ExplicitBatchSizeRespected) {
  const auto batches = PartitionMatches(10, 4, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 4);
  EXPECT_EQ(batches[1].size(), 4);
  EXPECT_EQ(batches[2].size(), 2);
  ExpectContiguousCover(batches, 10);
}

TEST(BatchingTest, ExplicitBatchSizeAppliesToSingleThreadToo) {
  const auto batches = PartitionMatches(10, 1, 3);
  ASSERT_EQ(batches.size(), 4u);
  ExpectContiguousCover(batches, 10);
}

MatchBinding Binding(VertexId v) { return MatchBinding{v}; }

TEST(ShardPrefixMergerTest, InOrderCompletionReleasesImmediately) {
  ShardPrefixMerger merger(2);
  auto released = merger.Complete(0, {Binding(0), Binding(1)});
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].shard, 0);
  EXPECT_EQ(released[0].released.first_match_index, 0);
  EXPECT_EQ(released[0].released.matches->size(), 2u);
  released = merger.Complete(1, {Binding(2)});
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].shard, 1);
  EXPECT_EQ(released[0].released.first_match_index, 2);
  EXPECT_EQ(merger.num_released(), 3);
}

TEST(ShardPrefixMergerTest, OutOfOrderCompletionHeldUntilPrefixForms) {
  ShardPrefixMerger merger(3);
  // Shard 2 first: nothing can be released yet.
  EXPECT_TRUE(merger.Complete(2, {Binding(5)}).empty());
  EXPECT_EQ(merger.num_released(), 0);
  // Shard 0 releases itself only.
  auto released = merger.Complete(0, {Binding(1), Binding(2)});
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].released.first_match_index, 0);
  // Shard 1 completes the prefix: both 1 and the held 2 come out, with
  // global indices in serial order.
  released = merger.Complete(1, {Binding(3), Binding(4)});
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].shard, 1);
  EXPECT_EQ(released[0].released.first_match_index, 2);
  EXPECT_EQ((*released[0].released.matches)[0], Binding(3));
  EXPECT_EQ(released[1].shard, 2);
  EXPECT_EQ(released[1].released.first_match_index, 4);
  EXPECT_EQ((*released[1].released.matches)[0], Binding(5));
  EXPECT_EQ(merger.num_released(), 5);
}

TEST(ShardPrefixMergerTest, EmptyShardsReleaseWithZeroWidth) {
  ShardPrefixMerger merger(3);
  EXPECT_TRUE(merger.Complete(1, {}).empty());
  auto released = merger.Complete(0, {});
  // Two empty shards flush; indices do not advance.
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].released.first_match_index, 0);
  EXPECT_EQ(released[1].released.first_match_index, 0);
  released = merger.Complete(2, {Binding(7)});
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].released.first_match_index, 0);
  EXPECT_EQ(merger.num_released(), 1);
}

TEST(ShardPrefixMergerTest, FreeShardReclaimsBufferKeepsAccounting) {
  ShardPrefixMerger merger(2);
  auto released = merger.Complete(0, {Binding(0), Binding(1)});
  ASSERT_EQ(released.size(), 1u);
  merger.FreeShard(released[0].shard);
  // The global index space and accounting are unaffected by the free.
  EXPECT_EQ(merger.num_released(), 2);
  released = merger.Complete(1, {Binding(2)});
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].released.first_match_index, 2);
  EXPECT_EQ(merger.num_released(), 3);
}

}  // namespace
}  // namespace flowmotif
