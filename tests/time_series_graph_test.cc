#include "graph/time_series_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;
using testing_util::PaperFig2Graph;

TEST(TimeSeriesGraphTest, BuildMergesMultiEdgesIntoSeries) {
  // The paper's Fig. 5 example: two u1->u2 edges merge into one pair.
  TimeSeriesGraph g = PaperFig2Graph();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_pairs(), 7);

  const EdgeSeries* series = g.FindSeries(0, 1);
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 2u);
  EXPECT_EQ(series->at(0), (Interaction{13, 5.0}));
  EXPECT_EQ(series->at(1), (Interaction{15, 7.0}));
}

TEST(TimeSeriesGraphTest, SeriesAreTimeSorted) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 30, 1.0}, {0, 1, 10, 2.0},
                                 {0, 1, 20, 3.0}});
  const EdgeSeries* series = g.FindSeries(0, 1);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->time(0), 10);
  EXPECT_EQ(series->time(1), 20);
  EXPECT_EQ(series->time(2), 30);
}

TEST(TimeSeriesGraphTest, FindSeriesMissingPairs) {
  TimeSeriesGraph g = PaperFig2Graph();
  EXPECT_EQ(g.FindSeries(0, 2), nullptr);  // u1->u3 does not exist
  EXPECT_EQ(g.FindSeries(1, 0), nullptr);  // u2->u1 does not exist
  EXPECT_EQ(g.FindSeries(-1, 0), nullptr);
  EXPECT_EQ(g.FindSeries(99, 0), nullptr);
}

TEST(TimeSeriesGraphTest, OutAdjacencyRanges) {
  TimeSeriesGraph g = PaperFig2Graph();
  // u4 (=3) has out-edges to u1, u2 and u3, sorted by destination.
  EXPECT_EQ(g.OutDegree(3), 3);
  std::vector<VertexId> dsts;
  for (size_t p = g.OutBegin(3); p < g.OutEnd(3); ++p) {
    dsts.push_back(g.pair(p).dst);
  }
  EXPECT_EQ(dsts, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(g.OutDegree(1), 1);  // u2 -> u3 only
}

TEST(TimeSeriesGraphTest, FindPairIndexConsistentWithPairs) {
  TimeSeriesGraph g = PaperFig2Graph();
  for (size_t i = 0; i < static_cast<size_t>(g.num_pairs()); ++i) {
    const auto& pe = g.pair(i);
    EXPECT_EQ(g.FindPairIndex(pe.src, pe.dst), static_cast<int64_t>(i));
  }
}

TEST(TimeSeriesGraphTest, StatsMatchPaperExample) {
  TimeSeriesGraph g = PaperFig2Graph();
  TimeSeriesGraph::Stats stats = g.ComputeStats();
  EXPECT_EQ(stats.num_vertices, 4);
  EXPECT_EQ(stats.num_connected_pairs, 7);
  EXPECT_EQ(stats.num_interactions, 10);
  // Total flow 5+7+20+10+5+4+7+2+5+10 = 75 over 10 interactions.
  EXPECT_DOUBLE_EQ(stats.avg_flow_per_edge, 7.5);
  EXPECT_EQ(stats.min_time, 1);
  EXPECT_EQ(stats.max_time, 23);
}

TEST(TimeSeriesGraphTest, EmptyGraphStats) {
  TimeSeriesGraph g = TimeSeriesGraph::Build(InteractionGraph());
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_pairs(), 0);
  TimeSeriesGraph::Stats stats = g.ComputeStats();
  EXPECT_EQ(stats.num_interactions, 0);
  EXPECT_EQ(stats.avg_flow_per_edge, 0.0);
}

TEST(TimeSeriesGraphTest, PermutedFlowsKeepsStructureAndTimestamps) {
  TimeSeriesGraph g = PaperFig2Graph();
  Rng rng(99);
  TimeSeriesGraph r = g.WithPermutedFlows(&rng);

  ASSERT_EQ(r.num_pairs(), g.num_pairs());
  for (size_t i = 0; i < static_cast<size_t>(g.num_pairs()); ++i) {
    EXPECT_EQ(r.pair(i).src, g.pair(i).src);
    EXPECT_EQ(r.pair(i).dst, g.pair(i).dst);
    ASSERT_EQ(r.pair(i).series.size(), g.pair(i).series.size());
    for (size_t j = 0; j < g.pair(i).series.size(); ++j) {
      EXPECT_EQ(r.pair(i).series.time(j), g.pair(i).series.time(j));
    }
  }
}

TEST(TimeSeriesGraphTest, PermutedFlowsPreservesFlowMultiset) {
  TimeSeriesGraph g = PaperFig2Graph();
  Rng rng(99);
  TimeSeriesGraph r = g.WithPermutedFlows(&rng);

  auto collect = [](const TimeSeriesGraph& graph) {
    std::vector<Flow> flows;
    for (const auto& pe : graph.pairs()) {
      for (size_t j = 0; j < pe.series.size(); ++j) {
        flows.push_back(pe.series.flow(j));
      }
    }
    std::sort(flows.begin(), flows.end());
    return flows;
  };
  EXPECT_EQ(collect(g), collect(r));
}

TEST(TimeSeriesGraphTest, PermutedFlowsActuallyShuffles) {
  // With 10 distinct-ish flows the chance of an identity permutation is
  // negligible; use a few seeds to be safe.
  TimeSeriesGraph g = PaperFig2Graph();
  bool changed = false;
  for (uint64_t seed = 1; seed <= 3 && !changed; ++seed) {
    Rng rng(seed);
    TimeSeriesGraph r = g.WithPermutedFlows(&rng);
    for (size_t i = 0; i < static_cast<size_t>(g.num_pairs()); ++i) {
      for (size_t j = 0; j < g.pair(i).series.size(); ++j) {
        if (r.pair(i).series.flow(j) != g.pair(i).series.flow(j)) {
          changed = true;
        }
      }
    }
  }
  EXPECT_TRUE(changed);
}

TEST(TimeSeriesGraphTest, PermutationIsDeterministicPerSeed) {
  TimeSeriesGraph g = PaperFig2Graph();
  Rng rng1(7);
  Rng rng2(7);
  TimeSeriesGraph a = g.WithPermutedFlows(&rng1);
  TimeSeriesGraph b = g.WithPermutedFlows(&rng2);
  for (size_t i = 0; i < static_cast<size_t>(g.num_pairs()); ++i) {
    for (size_t j = 0; j < g.pair(i).series.size(); ++j) {
      EXPECT_EQ(a.pair(i).series.flow(j), b.pair(i).series.flow(j));
    }
  }
}

TEST(TimeSeriesGraphTest, DebugStringMentionsCounts) {
  TimeSeriesGraph g = PaperFig2Graph();
  std::string s = g.DebugString();
  EXPECT_NE(s.find("vertices=4"), std::string::npos);
  EXPECT_NE(s.find("pairs=7"), std::string::npos);
}

}  // namespace
}  // namespace flowmotif
