// The engine's central promise: parallelism — in phase P1 (structural
// matching) and phase P2 alike, including the streamed P1→P2 pipeline —
// never changes any result. For random graphs from the gen/ presets and
// threads in {1, 2, 4, 8}, every mode must produce byte-identical
// output — the same instance sets, the same deterministic counters, the
// same top-k entries — with the single documented exception of the
// top-k pruning counters, which depend on how fast the floating
// threshold tightened.
#include <gtest/gtest.h>

#include <vector>

#include "core/motif_catalog.h"
#include "core/structural_match.h"
#include "engine/query_engine.h"
#include "gen/presets.h"
#include "util/thread_pool.h"

namespace flowmotif {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct Workload {
  TimeSeriesGraph graph;
  Motif motif;
  Timestamp delta;
  Flow phi;
};

std::vector<Workload> Workloads() {
  std::vector<Workload> workloads;
  for (const DatasetPreset& preset : AllPresets()) {
    // Small but non-trivial samples: hundreds of interactions, enough
    // matches that every thread count actually splits work.
    const TimeSeriesGraph graph = GenerateDataset(preset, 0.05);
    workloads.push_back({graph, *MotifCatalog::ByName("M(3,2)"),
                         preset.default_delta, preset.default_phi});
    workloads.push_back({graph, *MotifCatalog::ByName("M(3,3)"),
                         preset.default_delta, 0.0});
    // A general (non-path) motif exercises the per-first-edge P1 work
    // units and the pair-table DFS branch through the whole engine.
    workloads.push_back({graph, *Motif::Parse("0>1,0>2", "fanout"),
                         preset.default_delta, 0.0});
  }
  return workloads;
}

TEST(ParallelEquivalenceTest, P1MatchListIdenticalAcrossThreadCounts) {
  for (const Workload& w : Workloads()) {
    const StructuralMatcher matcher(w.graph, w.motif);
    const std::vector<MatchBinding> serial = matcher.FindAllMatches();
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      ASSERT_EQ(matcher.FindAllMatchesParallel(&pool), serial)
          << w.motif.name() << " threads=" << threads;
    }
  }
}

TEST(ParallelEquivalenceTest, StreamedCountersIdenticalAcrossThreadCounts) {
  // collect_limit == 0 routes threads > 1 through the streamed P1→P2
  // pipeline; all deterministic counters must match the serial run.
  for (const Workload& w : Workloads()) {
    QueryEngine engine(w.graph);
    QueryOptions options;
    options.mode = QueryMode::kEnumerate;
    options.delta = w.delta;
    options.phi = w.phi;
    options.collect_limit = 0;

    options.num_threads = 1;
    const QueryResult serial = engine.Run(w.motif, options);
    for (int threads : kThreadCounts) {
      options.num_threads = threads;
      const QueryResult streamed = engine.Run(w.motif, options);
      ASSERT_EQ(streamed.stats.num_instances, serial.stats.num_instances)
          << w.motif.name() << " threads=" << threads;
      ASSERT_EQ(streamed.stats.num_structural_matches,
                serial.stats.num_structural_matches);
      ASSERT_EQ(streamed.stats.num_windows_processed,
                serial.stats.num_windows_processed);
      ASSERT_EQ(streamed.stats.num_phi_prunes, serial.stats.num_phi_prunes);
      ASSERT_EQ(streamed.stats.num_domination_skips,
                serial.stats.num_domination_skips);
    }
  }
}

TEST(ParallelEquivalenceTest, EnumerateIdenticalAcrossThreadCounts) {
  for (const Workload& w : Workloads()) {
    QueryEngine engine(w.graph);
    QueryOptions options;
    options.mode = QueryMode::kEnumerate;
    options.delta = w.delta;
    options.phi = w.phi;
    options.collect_limit = -1;

    options.num_threads = 1;
    const QueryResult serial = engine.Run(w.motif, options);
    for (int threads : kThreadCounts) {
      options.num_threads = threads;
      const QueryResult parallel = engine.Run(w.motif, options);
      ASSERT_EQ(parallel.stats.num_instances, serial.stats.num_instances)
          << w.motif.name() << " threads=" << threads;
      ASSERT_EQ(parallel.stats.num_structural_matches,
                serial.stats.num_structural_matches);
      ASSERT_EQ(parallel.stats.num_windows_processed,
                serial.stats.num_windows_processed);
      ASSERT_EQ(parallel.stats.num_phi_prunes, serial.stats.num_phi_prunes);
      ASSERT_EQ(parallel.stats.num_domination_skips,
                serial.stats.num_domination_skips);
      // The full materialized instance sets, in the same order.
      ASSERT_EQ(parallel.instances, serial.instances)
          << w.motif.name() << " threads=" << threads;
    }
  }
}

TEST(ParallelEquivalenceTest, StreamedEnumerateWithCollectLimitStaysIdentical) {
  // threads > 1 with a collect limit routes through the streamed P1→P2
  // pipeline (shards released out of order): the collected prefix must
  // still be the serial discovery-order prefix, exactly.
  for (const Workload& w : Workloads()) {
    QueryEngine engine(w.graph);
    QueryOptions options;
    options.mode = QueryMode::kEnumerate;
    options.delta = w.delta;
    options.phi = w.phi;
    for (const int64_t limit : {int64_t{7}, int64_t{-1}}) {
      options.collect_limit = limit;
      options.num_threads = 1;
      options.batch_size = 0;
      const QueryResult serial = engine.Run(w.motif, options);
      for (int threads : {2, 8}) {
        options.num_threads = threads;
        // Tiny batches on the larger thread count stress the
        // out-of-order merge far harder than the derived size.
        options.batch_size = threads == 8 ? 1 : 0;
        const QueryResult streamed = engine.Run(w.motif, options);
        ASSERT_EQ(streamed.instances, serial.instances)
            << w.motif.name() << " threads=" << threads
            << " limit=" << limit;
        ASSERT_EQ(streamed.stats.num_instances, serial.stats.num_instances);
        ASSERT_EQ(streamed.stats.num_structural_matches,
                  serial.stats.num_structural_matches);
      }
    }
  }
}

TEST(ParallelEquivalenceTest, CountIdenticalAcrossThreadCounts) {
  for (const Workload& w : Workloads()) {
    QueryEngine engine(w.graph);
    QueryOptions options;
    options.mode = QueryMode::kCount;
    options.delta = w.delta;
    options.phi = w.phi;

    options.num_threads = 1;
    const QueryResult serial = engine.Run(w.motif, options);
    for (int threads : kThreadCounts) {
      options.num_threads = threads;
      const QueryResult parallel = engine.Run(w.motif, options);
      ASSERT_EQ(parallel.stats.num_instances, serial.stats.num_instances)
          << w.motif.name() << " threads=" << threads;
      ASSERT_EQ(parallel.memo_hits, serial.memo_hits);
      ASSERT_EQ(parallel.stats.num_windows_processed,
                serial.stats.num_windows_processed);
    }
  }
}

TEST(ParallelEquivalenceTest, TopKIdenticalAcrossThreadCounts) {
  for (const Workload& w : Workloads()) {
    QueryEngine engine(w.graph);
    QueryOptions options;
    options.mode = QueryMode::kTopK;
    options.delta = w.delta;
    options.phi = 0.0;
    options.k = 10;

    options.num_threads = 1;
    const QueryResult serial = engine.Run(w.motif, options);
    for (int threads : kThreadCounts) {
      options.num_threads = threads;
      const QueryResult parallel = engine.Run(w.motif, options);
      ASSERT_EQ(parallel.topk.size(), serial.topk.size())
          << w.motif.name() << " threads=" << threads;
      for (size_t i = 0; i < serial.topk.size(); ++i) {
        ASSERT_DOUBLE_EQ(parallel.topk[i].flow, serial.topk[i].flow)
            << w.motif.name() << " threads=" << threads << " entry " << i;
        ASSERT_EQ(parallel.topk[i].instance, serial.topk[i].instance)
            << w.motif.name() << " threads=" << threads << " entry " << i;
      }
    }
  }
}

TEST(ParallelEquivalenceTest, Top1IdenticalAcrossThreadCounts) {
  for (const Workload& w : Workloads()) {
    QueryEngine engine(w.graph);
    QueryOptions options;
    options.mode = QueryMode::kTop1;
    options.delta = w.delta;

    options.num_threads = 1;
    const QueryResult serial = engine.Run(w.motif, options);
    for (int threads : kThreadCounts) {
      options.num_threads = threads;
      const QueryResult parallel = engine.Run(w.motif, options);
      ASSERT_EQ(parallel.top1.found, serial.top1.found)
          << w.motif.name() << " threads=" << threads;
      if (serial.top1.found) {
        ASSERT_DOUBLE_EQ(parallel.top1.max_flow, serial.top1.max_flow);
        ASSERT_EQ(parallel.top1.best, serial.top1.best);
        ASSERT_EQ(parallel.top1.binding, serial.top1.binding);
      }
      ASSERT_EQ(parallel.stats.num_windows_processed,
                serial.stats.num_windows_processed);
    }
  }
}

TEST(ParallelEquivalenceTest, SignificanceIdenticalAcrossThreadCounts) {
  // One preset is enough here: each report runs 1 + num_random_graphs
  // full counts.
  const DatasetPreset& preset = GetPreset(DatasetKind::kBitcoin);
  const TimeSeriesGraph graph = GenerateDataset(preset, 0.03);
  QueryEngine engine(graph);
  QueryOptions options;
  options.mode = QueryMode::kSignificance;
  options.delta = preset.default_delta;
  options.phi = preset.default_phi;
  options.num_random_graphs = 8;
  options.seed = 11;

  options.num_threads = 1;
  const QueryResult serial =
      engine.Run(*MotifCatalog::ByName("M(3,2)"), options);
  for (int threads : kThreadCounts) {
    options.num_threads = threads;
    const QueryResult parallel =
        engine.Run(*MotifCatalog::ByName("M(3,2)"), options);
    ASSERT_EQ(parallel.significance.real_count,
              serial.significance.real_count)
        << "threads=" << threads;
    ASSERT_EQ(parallel.significance.random_counts,
              serial.significance.random_counts);
    ASSERT_DOUBLE_EQ(parallel.significance.z_score,
                     serial.significance.z_score);
    ASSERT_DOUBLE_EQ(parallel.significance.p_value,
                     serial.significance.p_value);
  }
}

TEST(ParallelEquivalenceTest, ExplicitSmallBatchesStayIdentical) {
  // Forcing many tiny batches exercises the merge logic far harder than
  // the derived batch size does.
  const DatasetPreset& preset = GetPreset(DatasetKind::kFacebook);
  const TimeSeriesGraph graph = GenerateDataset(preset, 0.05);
  QueryEngine engine(graph);
  const Motif motif = *MotifCatalog::ByName("M(3,2)");

  QueryOptions options;
  options.mode = QueryMode::kTopK;
  options.delta = preset.default_delta;
  options.k = 5;
  options.num_threads = 1;
  const QueryResult serial = engine.Run(motif, options);

  options.num_threads = 8;
  options.batch_size = 1;
  const QueryResult parallel = engine.Run(motif, options);
  ASSERT_EQ(parallel.topk.size(), serial.topk.size());
  for (size_t i = 0; i < serial.topk.size(); ++i) {
    ASSERT_DOUBLE_EQ(parallel.topk[i].flow, serial.topk[i].flow) << i;
    ASSERT_EQ(parallel.topk[i].instance, serial.topk[i].instance) << i;
  }
}

}  // namespace
}  // namespace flowmotif
