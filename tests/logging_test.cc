#include "util/logging.h"

#include <gtest/gtest.h>

namespace flowmotif {
namespace {

TEST(LoggingTest, LevelFilteringRoundTrips) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, LogMacroCompilesAndStreams) {
  // Smoke test: streaming through the macro must compile for mixed types
  // and not crash.
  FLOWMOTIF_LOG(Info) << "test message " << 42 << " " << 3.14;
  FLOWMOTIF_LOG(Warning) << "warning";
  FLOWMOTIF_LOG(Error) << "error";
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluateStream) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  FLOWMOTIF_LOG(Debug) << count();
  FLOWMOTIF_LOG(Info) << count();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ FLOWMOTIF_CHECK(1 == 2) << "impossible"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckComparisonsAbortOnViolation) {
  EXPECT_DEATH({ FLOWMOTIF_CHECK_EQ(1, 2); }, "Check failed");
  EXPECT_DEATH({ FLOWMOTIF_CHECK_LT(2, 1); }, "Check failed");
  EXPECT_DEATH({ FLOWMOTIF_CHECK_GT(1, 2); }, "Check failed");
}

TEST(LoggingTest, CheckPassesSilently) {
  FLOWMOTIF_CHECK(true);
  FLOWMOTIF_CHECK_EQ(3, 3);
  FLOWMOTIF_CHECK_NE(3, 4);
  FLOWMOTIF_CHECK_LE(3, 3);
  FLOWMOTIF_CHECK_GE(4, 3);
}

}  // namespace
}  // namespace flowmotif
