#include "gen/presets.h"

#include <gtest/gtest.h>

namespace flowmotif {
namespace {

TEST(PresetsTest, AllThreeDatasetsPresent) {
  const std::vector<DatasetPreset>& presets = AllPresets();
  ASSERT_EQ(presets.size(), 3u);
  EXPECT_EQ(presets[0].name, "bitcoin");
  EXPECT_EQ(presets[1].name, "facebook");
  EXPECT_EQ(presets[2].name, "passenger");
}

TEST(PresetsTest, PaperDefaultParameters) {
  // Sec. 6.2: delta defaults 600/600/900 and phi defaults 5/3/2.
  EXPECT_EQ(GetPreset(DatasetKind::kBitcoin).default_delta, 600);
  EXPECT_EQ(GetPreset(DatasetKind::kFacebook).default_delta, 600);
  EXPECT_EQ(GetPreset(DatasetKind::kPassenger).default_delta, 900);
  EXPECT_EQ(GetPreset(DatasetKind::kBitcoin).default_phi, 5.0);
  EXPECT_EQ(GetPreset(DatasetKind::kFacebook).default_phi, 3.0);
  EXPECT_EQ(GetPreset(DatasetKind::kPassenger).default_phi, 2.0);
}

TEST(PresetsTest, SweepsMatchPaperFigures) {
  const DatasetPreset& bitcoin = GetPreset(DatasetKind::kBitcoin);
  EXPECT_EQ(bitcoin.delta_sweep,
            (std::vector<Timestamp>{200, 400, 600, 800, 1000}));
  EXPECT_EQ(bitcoin.phi_sweep, (std::vector<Flow>{5, 10, 15, 20, 25}));
  const DatasetPreset& passenger = GetPreset(DatasetKind::kPassenger);
  EXPECT_EQ(passenger.delta_sweep,
            (std::vector<Timestamp>{300, 600, 900, 1200, 1500}));
  EXPECT_EQ(passenger.phi_sweep, (std::vector<Flow>{1, 2, 3, 4, 5}));
}

TEST(PresetsTest, TimeSampleCountsMatchFig13) {
  EXPECT_EQ(GetPreset(DatasetKind::kBitcoin).num_time_samples, 5);
  EXPECT_EQ(GetPreset(DatasetKind::kFacebook).num_time_samples, 5);
  EXPECT_EQ(GetPreset(DatasetKind::kPassenger).num_time_samples, 4);
}

TEST(PresetsTest, PresetByName) {
  StatusOr<DatasetPreset> p = PresetByName("facebook");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->kind, DatasetKind::kFacebook);
  EXPECT_FALSE(PresetByName("twitter").ok());
}

TEST(PresetsTest, GenerateDatasetSmallScale) {
  TimeSeriesGraph g =
      GenerateDataset(GetPreset(DatasetKind::kPassenger), 0.05);
  TimeSeriesGraph::Stats stats = g.ComputeStats();
  EXPECT_GT(stats.num_interactions, 0);
  EXPECT_GT(stats.num_connected_pairs, 0);
  // Downscaling shrinks the zone set too.
  EXPECT_LT(stats.num_vertices,
            GetPreset(DatasetKind::kPassenger).config.num_vertices);
}

TEST(PresetsTest, PassengerZonesFixedAtFullScale) {
  TimeSeriesGraph g =
      GenerateDataset(GetPreset(DatasetKind::kPassenger), 1.0);
  EXPECT_EQ(g.num_vertices(), 289);
}

TEST(PresetsTest, ScaleGrowsInteractionCount) {
  const DatasetPreset& preset = GetPreset(DatasetKind::kPassenger);
  int64_t small =
      GenerateDataset(preset, 0.05).ComputeStats().num_interactions;
  int64_t large =
      GenerateDataset(preset, 0.2).ComputeStats().num_interactions;
  EXPECT_GT(large, small);
}

TEST(PresetsTest, GenerationIsDeterministic) {
  const DatasetPreset& preset = GetPreset(DatasetKind::kBitcoin);
  TimeSeriesGraph a = GenerateDataset(preset, 0.05);
  TimeSeriesGraph b = GenerateDataset(preset, 0.05);
  ASSERT_EQ(a.num_pairs(), b.num_pairs());
  TimeSeriesGraph::Stats sa = a.ComputeStats();
  TimeSeriesGraph::Stats sb = b.ComputeStats();
  EXPECT_EQ(sa.num_interactions, sb.num_interactions);
  EXPECT_EQ(sa.avg_flow_per_edge, sb.avg_flow_per_edge);
}

TEST(PresetsDeathTest, NonPositiveScaleAborts) {
  EXPECT_DEATH(GenerateDataset(GetPreset(DatasetKind::kBitcoin), 0.0),
               "Check failed");
}

}  // namespace
}  // namespace flowmotif
