#include "core/motif_catalog.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace flowmotif {
namespace {

TEST(MotifCatalogTest, HasAllTenPaperMotifs) {
  const std::vector<Motif>& all = MotifCatalog::All();
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(MotifCatalog::Names(),
            (std::vector<std::string>{"M(3,2)", "M(3,3)", "M(4,3)",
                                      "M(4,4)A", "M(4,4)B", "M(4,4)C",
                                      "M(5,4)", "M(5,5)A", "M(5,5)B",
                                      "M(5,5)C"}));
}

TEST(MotifCatalogTest, NodeAndEdgeCountsMatchNames) {
  // M(n, m) has n nodes and m edges.
  const std::map<std::string, std::pair<int, int>> expected{
      {"M(3,2)", {3, 2}},  {"M(3,3)", {3, 3}},  {"M(4,3)", {4, 3}},
      {"M(4,4)A", {4, 4}}, {"M(4,4)B", {4, 4}}, {"M(4,4)C", {4, 4}},
      {"M(5,4)", {5, 4}},  {"M(5,5)A", {5, 5}}, {"M(5,5)B", {5, 5}},
      {"M(5,5)C", {5, 5}},
  };
  for (const Motif& m : MotifCatalog::All()) {
    const auto& [nodes, edges] = expected.at(m.name());
    EXPECT_EQ(m.num_nodes(), nodes) << m.name();
    EXPECT_EQ(m.num_edges(), edges) << m.name();
  }
}

TEST(MotifCatalogTest, CyclicityMatchesPaper) {
  // Chains are acyclic; all other catalog motifs contain a cycle.
  const std::set<std::string> chains{"M(3,2)", "M(4,3)", "M(5,4)"};
  for (const Motif& m : MotifCatalog::All()) {
    EXPECT_EQ(m.HasCycle(), chains.find(m.name()) == chains.end())
        << m.name();
  }
}

TEST(MotifCatalogTest, PureCyclesStartAndEndAtOrigin) {
  for (const char* name : {"M(3,3)", "M(4,4)A", "M(5,5)A"}) {
    StatusOr<Motif> m = MotifCatalog::ByName(name);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->path().front(), m->path().back()) << name;
  }
}

TEST(MotifCatalogTest, AllPathsAreDistinct) {
  std::set<std::string> paths;
  for (const Motif& m : MotifCatalog::All()) {
    EXPECT_TRUE(paths.insert(m.PathString()).second)
        << "duplicate path " << m.PathString();
  }
}

TEST(MotifCatalogTest, ByNameFindsEveryMotif) {
  for (const Motif& m : MotifCatalog::All()) {
    StatusOr<Motif> found = MotifCatalog::ByName(m.name());
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, m);
  }
}

TEST(MotifCatalogTest, ByNameRejectsUnknown) {
  EXPECT_EQ(MotifCatalog::ByName("M(9,9)").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace flowmotif
