// Golden tests that replay the worked examples of the paper:
//  * Fig. 2 / Fig. 4: the M(3,3) instances of the running-example bitcoin
//    graph with delta = 10, phi = 7;
//  * Fig. 7: the window positions and the enumerated instances of the
//    structural match u3->u2->u1->u3 for delta = 10 and several phi.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/enumerator.h"
#include "core/motif.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig2Graph;
using testing_util::PaperFig7Graph;

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)"); }

EnumerationOptions Opts(Timestamp delta, Flow phi) {
  EnumerationOptions o;
  o.delta = delta;
  o.phi = phi;
  return o;
}

std::vector<MotifInstance> Collect(const TimeSeriesGraph& g,
                                   const Motif& motif, Timestamp delta,
                                   Flow phi) {
  FlowMotifEnumerator enumerator(g, motif, Opts(delta, phi));
  std::vector<MotifInstance> out = enumerator.CollectAll();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PaperFig4Test, M33InstancesWithDelta10Phi7) {
  // With delta = 10, phi = 7 the running-example graph has exactly two
  // maximal M(3,3) instances:
  //  * Fig. 4(a): u3,u1,u2 with [e1<-{(10,10)}, e2<-{(13,5),(15,7)},
  //    e3<-{(18,20)}] (flow 10);
  //  * the second triangle u2,u3,u4 with [e1<-{(18,20)},
  //    e2<-{(19,5),(21,4)}, e3<-{(23,7)}] (flow 7).
  std::vector<MotifInstance> instances =
      Collect(PaperFig2Graph(), M33(), 10, 7.0);
  ASSERT_EQ(instances.size(), 2u);

  MotifInstance fig4a;
  fig4a.binding = {2, 0, 1};
  fig4a.edge_sets = {{{10, 10.0}},
                     {{13, 5.0}, {15, 7.0}},
                     {{18, 20.0}}};
  MotifInstance second_triangle;
  second_triangle.binding = {1, 2, 3};
  second_triangle.edge_sets = {{{18, 20.0}},
                               {{19, 5.0}, {21, 4.0}},
                               {{23, 7.0}}};

  EXPECT_NE(std::find(instances.begin(), instances.end(), fig4a),
            instances.end());
  EXPECT_NE(std::find(instances.begin(), instances.end(), second_triangle),
            instances.end());
  EXPECT_DOUBLE_EQ(fig4a.InstanceFlow(), 10.0);
  EXPECT_DOUBLE_EQ(second_triangle.InstanceFlow(), 7.0);
}

TEST(PaperFig4Test, NonMaximalVariantIsNotEmitted) {
  // Fig. 4(b): same binding but e2 <- {(15,7)} only. It must not appear.
  std::vector<MotifInstance> instances =
      Collect(PaperFig2Graph(), M33(), 10, 7.0);
  MotifInstance fig4b;
  fig4b.binding = {2, 0, 1};
  fig4b.edge_sets = {{{10, 10.0}}, {{15, 7.0}}, {{18, 20.0}}};
  EXPECT_EQ(std::find(instances.begin(), instances.end(), fig4b),
            instances.end());
}

TEST(PaperFig4Test, BothEmittedInstancesAreMaximal) {
  TimeSeriesGraph g = PaperFig2Graph();
  for (const MotifInstance& instance : Collect(g, M33(), 10, 7.0)) {
    EXPECT_TRUE(ValidateInstance(g, M33(), instance, 10, 7.0).ok());
    EXPECT_TRUE(IsMaximalInstance(g, M33(), instance, 10))
        << instance.ToString();
  }
}

// ---------------------------------------------------------------------------
// Fig. 7: match binding node0->u3(=2), node1->u2(=1), node2->u1(=0):
// e1 = u3->u2 {(10,5),(13,2),(15,3),(18,7)},
// e2 = u2->u1 {(9,4),(11,3),(16,3)},
// e3 = u1->u3 {(14,4),(19,6),(24,3),(25,2)}.
// ---------------------------------------------------------------------------

MatchBinding Fig7Binding() { return {2, 1, 0}; }

std::vector<MotifInstance> CollectFig7(Flow phi) {
  TimeSeriesGraph g = PaperFig7Graph();
  Motif m33 = M33();
  FlowMotifEnumerator enumerator(g, m33, Opts(10, phi));
  std::vector<MotifInstance> out;
  EnumerationResult result;
  enumerator.EnumerateMatch(
      Fig7Binding(),
      [&out](const InstanceView& view) {
        out.push_back(view.Materialize());
        return true;
      },
      &result);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PaperFig7Test, PhiZeroEnumeratesFourInstances) {
  std::vector<MotifInstance> instances = CollectFig7(0.0);
  ASSERT_EQ(instances.size(), 4u);

  // The two instances of prefix [10,10] called out in the paper's text.
  MotifInstance paper1;
  paper1.binding = Fig7Binding();
  paper1.edge_sets = {{{10, 5.0}},
                      {{11, 3.0}},
                      {{14, 4.0}, {19, 6.0}}};
  MotifInstance paper2;
  paper2.binding = Fig7Binding();
  paper2.edge_sets = {{{10, 5.0}},
                      {{11, 3.0}, {16, 3.0}},
                      {{19, 6.0}}};
  EXPECT_NE(std::find(instances.begin(), instances.end(), paper1),
            instances.end());
  EXPECT_NE(std::find(instances.begin(), instances.end(), paper2),
            instances.end());

  // The remaining two: the prefix ending at 15 within [10,20] and the
  // window [15,25] instance.
  MotifInstance third;
  third.binding = Fig7Binding();
  third.edge_sets = {{{10, 5.0}, {13, 2.0}, {15, 3.0}},
                     {{16, 3.0}},
                     {{19, 6.0}}};
  MotifInstance fourth;
  fourth.binding = Fig7Binding();
  fourth.edge_sets = {{{15, 3.0}},
                      {{16, 3.0}},
                      {{19, 6.0}, {24, 3.0}, {25, 2.0}}};
  EXPECT_NE(std::find(instances.begin(), instances.end(), third),
            instances.end());
  EXPECT_NE(std::find(instances.begin(), instances.end(), fourth),
            instances.end());
}

TEST(PaperFig7Test, NoInstanceWithJustTheFirstTwoE1Elements) {
  // The paper: "there is no instance which contains just the first two
  // elements of e1 but not the third one, because there is no element
  // from e2 which is temporally between (13,2) and (15,3)".
  for (const MotifInstance& instance : CollectFig7(0.0)) {
    EXPECT_NE(instance.edge_sets[0],
              (std::vector<Interaction>{{10, 5.0}, {13, 2.0}}))
        << instance.ToString();
  }
}

TEST(PaperFig7Test, Phi5RejectsTheLowFlowE2Prefix) {
  // The paper: with phi = 5, any instance [e1<-{(10,5)}, e2<-{(11,3)},..]
  // is rejected; only the aggregated e2 = {(11,3),(16,3)} survives.
  std::vector<MotifInstance> instances = CollectFig7(5.0);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].edge_sets[0],
            (std::vector<Interaction>{{10, 5.0}}));
  EXPECT_EQ(instances[0].edge_sets[1],
            (std::vector<Interaction>{{11, 3.0}, {16, 3.0}}));
  EXPECT_EQ(instances[0].edge_sets[2],
            (std::vector<Interaction>{{19, 6.0}}));
  // This is exactly the paper's top-1 instance with flow 5 (Table 2).
  EXPECT_DOUBLE_EQ(instances[0].InstanceFlow(), 5.0);
}

TEST(PaperFig7Test, Phi7LeavesNothing) {
  EXPECT_TRUE(CollectFig7(7.0).empty());
}

TEST(PaperFig7Test, WindowCountersMatchPaperNarrative) {
  // Two processed windows ([10,20] and [15,25]); [13,23] and [18,28] are
  // skipped.
  TimeSeriesGraph g = PaperFig7Graph();
  FlowMotifEnumerator enumerator(g, M33(), Opts(10, 0.0));
  EnumerationResult result;
  enumerator.EnumerateMatch(Fig7Binding(), nullptr, &result);
  EXPECT_EQ(result.num_windows_processed, 2);
  EXPECT_EQ(result.num_instances, 4);
}

}  // namespace
}  // namespace flowmotif
