// The query-lifecycle robustness matrix (DESIGN.md Sec. 10): every
// failpoint site x every query mode x every injected fault x serial and
// parallel pools. Each faulted run must terminate without a crash or a
// deadlock, report the injected outcome (code + site) in its
// Termination record, expose only a canonical work prefix as partial
// results, and leave the engine fully serviceable — a clean follow-up
// query must be byte-identical to one on a fresh engine. Budget,
// deadline, pre-cancelled-token, and async cancellation races are
// covered without failpoints; the streamed-pipeline race at
// batch_size = 1 is the TSan target for the deterministic-prefix
// guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/motif_catalog.h"
#include "core/structural_match.h"
#include "engine/query_engine.h"
#include "gen/presets.h"
#include "stream/streaming_monitor.h"
#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace flowmotif {
namespace {

struct Workload {
  TimeSeriesGraph graph;
  Motif motif;
  Timestamp delta;
};

/// One shared moderately sized workload: hundreds of interactions and
/// enough structural matches that prefixes, batches, and parallel
/// shards are all non-trivial.
const Workload& SharedWorkload() {
  static const Workload* workload = [] {
    const DatasetPreset& preset = AllPresets().front();
    return new Workload{GenerateDataset(preset, 0.05),
                        *MotifCatalog::ByName("M(3,2)"),
                        preset.default_delta};
  }();
  return *workload;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kFailpointsCompiledIn) {
      GTEST_SKIP() << "failpoints compiled out (FLOWMOTIF_FAILPOINTS=OFF)";
    }
    failpoint::DisarmAll();
  }
  void TearDown() override { failpoint::DisarmAll(); }
};

/// Compares the mode-relevant deterministic payload of two results.
/// Every stat here is deterministic in every mode — kTopK quarantines
/// its floating-threshold activity in num_pruning_probes, so its
/// num_instances (== topk.size()) compares like any other mode's.
void ExpectSamePayload(const QueryResult& a, const QueryResult& b,
                       const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.stats.num_instances, b.stats.num_instances);
  EXPECT_EQ(a.stats.num_phi_prunes, b.stats.num_phi_prunes);
  EXPECT_EQ(a.stats.num_structural_matches, b.stats.num_structural_matches);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i], b.instances[i]) << "instance " << i;
  }
  ASSERT_EQ(a.topk.size(), b.topk.size());
  for (size_t i = 0; i < a.topk.size(); ++i) {
    EXPECT_EQ(a.topk[i].flow, b.topk[i].flow) << "topk " << i;
    EXPECT_EQ(a.topk[i].instance, b.topk[i].instance) << "topk " << i;
  }
  EXPECT_EQ(a.top1.found, b.top1.found);
  EXPECT_EQ(a.top1.max_flow, b.top1.max_flow);
  if (a.top1.found && b.top1.found) {
    EXPECT_EQ(a.top1.best, b.top1.best);
  }
  if (a.mode == QueryMode::kSignificance) {
    EXPECT_EQ(a.significance.real_count, b.significance.real_count);
    EXPECT_EQ(a.significance.random_counts, b.significance.random_counts);
    EXPECT_EQ(a.significance.z_score, b.significance.z_score);
    EXPECT_EQ(a.significance.p_value, b.significance.p_value);
  }
}

TEST_F(FaultInjectionTest, SiteInventoryIsComplete) {
  const std::vector<std::string>& sites = failpoint::AllSites();
  EXPECT_EQ(sites.size(), 10u);
  for (const char* site :
       {failpoint::kEngineStart, failpoint::kP1Unit, failpoint::kP2Batch,
        failpoint::kDpMatch, failpoint::kSigTask, failpoint::kSweepRecord,
        failpoint::kSweepCell, failpoint::kStreamRevisit,
        failpoint::kCacheWindows, failpoint::kServeAdmit}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), std::string(site)),
              sites.end())
        << site;
  }
}

TEST_F(FaultInjectionTest, EverySiteModeActionTerminatesAndEngineRecovers) {
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);

  struct ModeCase {
    const char* name;
    QueryOptions options;
    std::vector<const char*> sites;  // cancellation points this mode hits
  };
  std::vector<ModeCase> modes;
  {
    QueryOptions o;
    o.mode = QueryMode::kEnumerate;
    o.delta = w.delta;
    o.collect_limit = -1;  // materialized: barrier path
    modes.push_back({"enumerate.barrier", o,
                     {failpoint::kEngineStart, failpoint::kP1Unit,
                      failpoint::kP2Batch}});
    o.collect_limit = 0;  // counters only: streamed path when threads > 1
    modes.push_back({"enumerate.streamed", o,
                     {failpoint::kEngineStart, failpoint::kP1Unit,
                      failpoint::kP2Batch}});
  }
  {
    QueryOptions o;
    o.mode = QueryMode::kCount;
    o.delta = w.delta;
    modes.push_back({"count", o,
                     {failpoint::kEngineStart, failpoint::kP1Unit,
                      failpoint::kP2Batch}});
  }
  {
    QueryOptions o;
    o.mode = QueryMode::kTopK;
    o.delta = w.delta;
    o.k = 5;
    modes.push_back({"topk", o,
                     {failpoint::kEngineStart, failpoint::kP1Unit,
                      failpoint::kP2Batch}});
  }
  {
    QueryOptions o;
    o.mode = QueryMode::kTop1;
    o.delta = w.delta;
    modes.push_back({"top1", o,
                     {failpoint::kEngineStart, failpoint::kP1Unit,
                      failpoint::kDpMatch}});
  }
  {
    QueryOptions o;
    o.mode = QueryMode::kSignificance;
    o.delta = w.delta;
    o.num_random_graphs = 4;
    o.seed = 7;
    modes.push_back(
        {"significance", o, {failpoint::kEngineStart, failpoint::kSigTask}});
  }

  struct ActionCase {
    failpoint::Action action;
    TerminationCode expected;
  };
  const ActionCase actions[] = {
      {failpoint::Action::kCancel, TerminationCode::kCancelled},
      {failpoint::Action::kDeadline, TerminationCode::kDeadlineExceeded},
      {failpoint::Action::kBudget, TerminationCode::kBudgetExceeded},
      {failpoint::Action::kError, TerminationCode::kError},
  };

  for (int threads : {1, 4}) {
    for (ModeCase& mode : modes) {
      mode.options.num_threads = threads;
      const QueryResult baseline = engine.Run(w.motif, mode.options);
      ASSERT_TRUE(baseline.termination.complete())
          << mode.name << " baseline: " << baseline.termination.ToString();

      for (const char* site : mode.sites) {
        for (const ActionCase& action : actions) {
          const std::string context = std::string(mode.name) + " site=" +
                                      site + " threads=" +
                                      std::to_string(threads);
          SCOPED_TRACE(context);

          failpoint::Config config;
          config.action = action.action;
          failpoint::Arm(site, config);
          const QueryResult faulted = engine.Run(w.motif, mode.options);
          failpoint::DisarmAll();

          EXPECT_EQ(faulted.termination.code, action.expected)
              << faulted.termination.ToString();
          EXPECT_EQ(faulted.termination.stopped_at, site);
          EXPECT_GE(faulted.termination.work_completed, 0);
          if (action.expected == TerminationCode::kError) {
            EXPECT_FALSE(faulted.termination.status.ok());
          } else {
            EXPECT_TRUE(faulted.termination.status.ok());
          }

          // The engine stays serviceable: a clean follow-up query is
          // byte-identical to the pre-fault baseline.
          const QueryResult again = engine.Run(w.motif, mode.options);
          ASSERT_TRUE(again.termination.complete());
          ExpectSamePayload(again, baseline, context + " follow-up");
        }
      }
    }
  }
}

TEST_F(FaultInjectionTest, MidRunStopExposesExactSerialPrefix) {
  // Arm the per-match P2 site a few hits in: whatever prefix length M
  // the faulted run reports, its payload must equal a clean serial
  // phase-P2 run over exactly the first M structural matches.
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  const StructuralMatcher matcher(w.graph, w.motif);
  const std::vector<MatchBinding> all = matcher.FindAllMatches();
  ASSERT_GT(all.size(), 16u);

  for (int threads : {1, 4}) {
    QueryOptions options;
    options.mode = QueryMode::kEnumerate;
    options.delta = w.delta;
    options.collect_limit = -1;
    options.num_threads = threads;
    options.batch_size = 4;

    failpoint::Config config;
    config.action = failpoint::Action::kCancel;
    config.hits_before_trigger = 9;
    failpoint::Arm(failpoint::kP2Batch, config);
    const QueryResult faulted = engine.Run(w.motif, options);
    failpoint::DisarmAll();

    ASSERT_EQ(faulted.termination.code, TerminationCode::kCancelled)
        << "threads=" << threads;
    const int64_t prefix = faulted.termination.work_completed;
    ASSERT_GE(prefix, 0);
    ASSERT_LT(prefix, static_cast<int64_t>(all.size()));
    EXPECT_EQ(faulted.stats.num_structural_matches, prefix);

    const std::vector<MatchBinding> head(all.begin(),
                                         all.begin() + prefix);
    QueryOptions clean = options;
    clean.num_threads = 1;
    const QueryResult reference = engine.RunOnMatches(w.motif, head, clean);
    ASSERT_TRUE(reference.termination.complete());
    ExpectSamePayload(faulted, reference,
                      "prefix=" + std::to_string(prefix) +
                          " threads=" + std::to_string(threads));
  }
}

TEST_F(FaultInjectionTest, MaxMatchesBudgetTruncatesToExactPrefix) {
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  const StructuralMatcher matcher(w.graph, w.motif);
  const std::vector<MatchBinding> all = matcher.FindAllMatches();
  constexpr int64_t kCap = 10;
  ASSERT_GT(all.size(), static_cast<size_t>(kCap));

  for (int threads : {1, 4}) {
    QueryOptions options;
    options.mode = QueryMode::kEnumerate;
    options.delta = w.delta;
    options.collect_limit = -1;
    options.num_threads = threads;
    options.budget.max_matches = kCap;

    const QueryResult result = engine.Run(w.motif, options);
    EXPECT_EQ(result.termination.code, TerminationCode::kBudgetExceeded)
        << "threads=" << threads;
    EXPECT_EQ(result.termination.stopped_at, failpoint::kP1Unit);
    EXPECT_EQ(result.termination.detail, "max_matches");
    // A soft stop: P2 ran to completion over exactly the first kCap
    // matches, for every thread count.
    EXPECT_EQ(result.termination.work_completed, kCap);
    EXPECT_EQ(result.stats.num_structural_matches, kCap);

    const std::vector<MatchBinding> head(all.begin(), all.begin() + kCap);
    QueryOptions clean;
    clean.mode = QueryMode::kEnumerate;
    clean.delta = w.delta;
    clean.collect_limit = -1;
    const QueryResult reference = engine.RunOnMatches(w.motif, head, clean);
    ExpectSamePayload(result, reference,
                      "max_matches threads=" + std::to_string(threads));
  }
}

TEST_F(FaultInjectionTest, WindowElementBudgetStopsThroughCache) {
  // The cache-routed flavour of the window budget: M(5,4) has an
  // interior node, so its window lists materialize through the shared
  // cache and the charge lands on the cache-insert path.
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  const Motif motif = *MotifCatalog::ByName("M(5,4)");
  QueryOptions options;
  options.mode = QueryMode::kCount;
  options.delta = w.delta;
  options.budget.max_window_elements = 1;

  const QueryResult result = engine.Run(motif, options);
  EXPECT_EQ(result.termination.code, TerminationCode::kBudgetExceeded)
      << result.termination.ToString();
  EXPECT_EQ(result.termination.stopped_at, failpoint::kCacheWindows);

  // Unconstrained follow-up still completes.
  options.budget = WorkBudget();
  const QueryResult clean = engine.Run(motif, options);
  EXPECT_TRUE(clean.termination.complete());
  EXPECT_GT(clean.stats.num_structural_matches, 0);
}

TEST_F(FaultInjectionTest, WindowBudgetHoldsForNonInteriorMotifs) {
  // Regression: the window/memory budget used to be charged only at
  // SharedWindowCache materialization, and the engine routes through
  // the cache only for motifs with an interior node — so M(2,1)/M(3,2)
  // computed their window lists privately, entirely unbudgeted. The
  // charge now lands uniformly at "cache.windows" for every list a
  // match materializes, cached or private, so the cap binds for every
  // motif shape. This test fails on the pre-fix engine (the query
  // completes as if no budget were set).
  const Workload& w = SharedWorkload();  // M(3,2): no interior node
  const QueryEngine engine(w.graph);
  for (QueryMode mode : {QueryMode::kCount, QueryMode::kEnumerate}) {
    SCOPED_TRACE(static_cast<int>(mode));
    QueryOptions options;
    options.mode = mode;
    options.delta = w.delta;
    options.budget.max_window_elements = 1;

    const QueryResult result = engine.Run(w.motif, options);
    EXPECT_EQ(result.termination.code, TerminationCode::kBudgetExceeded)
        << result.termination.ToString();
    EXPECT_EQ(result.termination.stopped_at, failpoint::kCacheWindows);

    options.budget = WorkBudget();
    const QueryResult clean = engine.Run(w.motif, options);
    EXPECT_TRUE(clean.termination.complete());
    EXPECT_GT(clean.stats.num_structural_matches, 0);
  }
}

TEST_F(FaultInjectionTest, TopKStatsDeterministicAcrossExecutionConfigs) {
  // Regression: kTopK's num_instances used to count emissions that
  // survived the floating threshold — an execution-dependent number
  // (batch-local thresholds tighten at different rates), so it
  // diverged between the control-active batched path and the serial
  // shared-threshold path. It now always equals topk.size(), with the
  // raw survivor/prune activity quarantined in num_pruning_probes.
  // This test fails on the pre-fix engine at batch_size = 1 with a
  // control active.
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  QueryOptions base;
  base.mode = QueryMode::kTopK;
  base.delta = w.delta;
  base.k = 5;

  const QueryResult reference = engine.Run(w.motif, base);
  ASSERT_TRUE(reference.termination.complete());
  ASSERT_FALSE(reference.topk.empty());
  EXPECT_EQ(reference.stats.num_instances,
            static_cast<int64_t>(reference.topk.size()));
  EXPECT_EQ(reference.stats.num_phi_prunes, 0);

  for (int threads : {1, 4}) {
    for (int64_t batch_size : {int64_t{1}, int64_t{0}}) {
      for (bool with_control : {false, true}) {
        QueryOptions o = base;
        o.num_threads = threads;
        o.batch_size = batch_size;
        if (with_control) {
          // A generous deadline activates the control without ever
          // tripping, forcing the batch-local TopKRunLocal path.
          o.deadline = QueryDeadline::AfterSeconds(3600.0);
        }
        const QueryResult r = engine.Run(w.motif, o);
        ASSERT_TRUE(r.termination.complete());
        ExpectSamePayload(r, reference,
                          "threads=" + std::to_string(threads) +
                              " batch=" + std::to_string(batch_size) +
                              " control=" + std::to_string(with_control));
      }
    }
  }
}

TEST(QueryControlBoundaryTest, BoundaryCheckReadsClockUnthrottled) {
  // Regression: every deadline read used to go through the 1-in-64
  // check throttle, so a batch of dense matches could burn a whole
  // throttle window past the deadline before any check noticed. The
  // batch-boundary check reads the clock unconditionally; the throttled
  // per-match checks in between are allowed to miss the expiry.
  QueryControl control(nullptr, QueryDeadline::AfterMillis(50), WorkBudget());
  // Check #0 is the throttle's scheduled clock read: not yet expired.
  EXPECT_FALSE(control.CheckAt(failpoint::kP2Batch));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // Throttled checks 1..32 skip the clock: the expiry goes unnoticed —
  // the pre-fix behaviour this test pins down.
  for (int i = 0; i < 32; ++i) {
    ASSERT_FALSE(control.CheckAt(failpoint::kP2Batch)) << "check " << i;
  }
  // The boundary check reads the clock unconditionally and stops.
  EXPECT_TRUE(control.CheckAtBoundary(failpoint::kP2Batch));
  const Termination t = control.Finish(0);
  EXPECT_EQ(t.code, TerminationCode::kDeadlineExceeded);
  EXPECT_EQ(t.stopped_at, failpoint::kP2Batch);
}

TEST_F(FaultInjectionTest, ExpiredDeadlineStopsBeforeWork) {
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  QueryOptions options;
  options.mode = QueryMode::kCount;
  options.delta = w.delta;
  options.deadline = QueryDeadline::AfterMillis(0);

  const QueryResult result = engine.Run(w.motif, options);
  EXPECT_EQ(result.termination.code, TerminationCode::kDeadlineExceeded);
  EXPECT_EQ(result.termination.stopped_at, failpoint::kEngineStart);
  EXPECT_EQ(result.termination.work_completed, 0);
}

TEST_F(FaultInjectionTest, GenerousDeadlineLeavesResultByteIdentical) {
  // An active control that never trips must not change any output.
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  for (QueryMode mode : {QueryMode::kEnumerate, QueryMode::kCount,
                         QueryMode::kTopK, QueryMode::kTop1}) {
    QueryOptions options;
    options.mode = mode;
    options.delta = w.delta;
    options.collect_limit = -1;
    options.k = 5;
    const QueryResult baseline = engine.Run(w.motif, options);
    options.deadline = QueryDeadline::AfterSeconds(3600.0);
    const QueryResult guarded = engine.Run(w.motif, options);
    ASSERT_TRUE(guarded.termination.complete());
    ExpectSamePayload(guarded, baseline,
                      "mode=" + std::to_string(static_cast<int>(mode)));
  }
}

TEST_F(FaultInjectionTest, PreCancelledTokenStopsImmediately) {
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  CancellationToken token;
  token.Cancel("caller gave up");
  QueryOptions options;
  options.mode = QueryMode::kTopK;
  options.delta = w.delta;
  options.k = 5;
  options.cancel_token = &token;

  const QueryResult result = engine.Run(w.motif, options);
  EXPECT_EQ(result.termination.code, TerminationCode::kCancelled);
  EXPECT_EQ(result.termination.stopped_at, failpoint::kEngineStart);
  EXPECT_EQ(result.termination.detail, "caller gave up");
  EXPECT_TRUE(result.topk.empty());
}

TEST_F(FaultInjectionTest, AsyncCancelRacingStreamedPipelineIsPrefixExact) {
  // The TSan target: a foreign thread cancels while the streamed P1→P2
  // pipeline is mid-flight at batch_size = 1. Whatever the stop point,
  // the result must be a clean serial prefix — never a torn merge.
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  const StructuralMatcher matcher(w.graph, w.motif);
  const std::vector<MatchBinding> all = matcher.FindAllMatches();

  QueryOptions options;
  options.mode = QueryMode::kCount;
  options.delta = w.delta;
  options.num_threads = 4;
  options.batch_size = 1;
  const QueryResult baseline = engine.Run(w.motif, options);

  for (int trial = 0; trial < 8; ++trial) {
    CancellationToken token;
    options.cancel_token = &token;
    std::thread canceller([&token, trial] {
      std::this_thread::sleep_for(std::chrono::microseconds(40 * trial));
      token.Cancel("race");
    });
    const QueryResult result = engine.Run(w.motif, options);
    canceller.join();

    if (result.termination.complete()) {
      ExpectSamePayload(result, baseline,
                        "trial " + std::to_string(trial) + " completed");
      continue;
    }
    ASSERT_EQ(result.termination.code, TerminationCode::kCancelled);
    const int64_t prefix = result.termination.work_completed;
    ASSERT_GE(prefix, 0);
    ASSERT_LE(prefix, static_cast<int64_t>(all.size()));
    EXPECT_EQ(result.stats.num_structural_matches, prefix);

    const std::vector<MatchBinding> head(all.begin(), all.begin() + prefix);
    QueryOptions clean;
    clean.mode = QueryMode::kCount;
    clean.delta = w.delta;
    const QueryResult reference = engine.RunOnMatches(w.motif, head, clean);
    EXPECT_EQ(result.stats.num_instances, reference.stats.num_instances)
        << "trial " << trial << " prefix " << prefix;
  }
}

TEST_F(FaultInjectionTest, SweepStopMarksExactlyTheCompletedCells) {
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  SweepQuery sweep;
  sweep.deltas = {w.delta / 2, w.delta, w.delta * 2};
  sweep.phis = {0.0, 1.0, 2.0};
  QueryOptions options;

  const SweepResult clean = engine.RunSweep(w.motif, sweep, options);
  ASSERT_TRUE(clean.termination.complete());
  ASSERT_EQ(clean.counts.size(), 9u);

  for (const bool replay : {true, false}) {
    options.skeleton_replay = replay;
    const SweepResult clean_path = engine.RunSweep(w.motif, sweep, options);
    failpoint::Config config;
    config.action = failpoint::Action::kCancel;
    config.hits_before_trigger = 3;
    failpoint::Arm(failpoint::kSweepCell, config);
    const SweepResult faulted = engine.RunSweep(w.motif, sweep, options);
    failpoint::DisarmAll();

    SCOPED_TRACE(replay ? "replay" : "fallback");
    EXPECT_EQ(faulted.termination.code, TerminationCode::kCancelled);
    ASSERT_EQ(faulted.cell_valid.size(), faulted.counts.size());
    int64_t valid = 0;
    for (size_t i = 0; i < faulted.cell_valid.size(); ++i) {
      if (faulted.cell_valid[i] == 0) continue;
      ++valid;
      // Every cell marked valid is exact.
      EXPECT_EQ(faulted.counts[i], clean_path.counts[i]) << "cell " << i;
    }
    EXPECT_EQ(valid, faulted.termination.work_completed);
    EXPECT_LT(valid, static_cast<int64_t>(faulted.counts.size()));
  }
}

TEST_F(FaultInjectionTest, SweepRecordingStopAbandonsCleanly) {
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  SweepQuery sweep;
  sweep.deltas = {w.delta};
  sweep.phis = {0.0, 1.0};
  QueryOptions options;

  failpoint::Config config;
  config.action = failpoint::Action::kDeadline;
  failpoint::Arm(failpoint::kSweepRecord, config);
  const SweepResult faulted = engine.RunSweep(w.motif, sweep, options);
  failpoint::DisarmAll();

  EXPECT_EQ(faulted.termination.code, TerminationCode::kDeadlineExceeded);
  const SweepResult clean = engine.RunSweep(w.motif, sweep, options);
  for (size_t i = 0; i < faulted.cell_valid.size(); ++i) {
    if (faulted.cell_valid[i] != 0) {
      EXPECT_EQ(faulted.counts[i], clean.counts[i]) << "cell " << i;
    }
  }
}

TEST_F(FaultInjectionTest, SignificanceStopCoversEnsemblePrefix) {
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);
  QueryOptions options;
  options.mode = QueryMode::kSignificance;
  options.delta = w.delta;
  options.num_random_graphs = 6;
  options.seed = 11;

  const QueryResult clean = engine.Run(w.motif, options);
  ASSERT_TRUE(clean.termination.complete());
  ASSERT_EQ(clean.significance.random_counts.size(), 6u);

  failpoint::Config config;
  config.action = failpoint::Action::kCancel;
  config.hits_before_trigger = 3;
  failpoint::Arm(failpoint::kSigTask, config);
  const QueryResult faulted = engine.Run(w.motif, options);
  failpoint::DisarmAll();

  ASSERT_EQ(faulted.termination.code, TerminationCode::kCancelled);
  const int64_t done = faulted.significance.graphs_completed;
  ASSERT_GE(done, 0);
  ASSERT_LT(done, 7);
  EXPECT_EQ(faulted.termination.work_completed, done);
  if (done >= 1) {
    EXPECT_EQ(faulted.significance.real_count, clean.significance.real_count);
  }
  ASSERT_EQ(faulted.significance.random_counts.size(),
            static_cast<size_t>(done >= 1 ? done - 1 : 0));
  for (size_t i = 0; i < faulted.significance.random_counts.size(); ++i) {
    // The ensemble prefix is deterministic: task i produces the same
    // count whether or not later tasks ran.
    EXPECT_EQ(faulted.significance.random_counts[i],
              clean.significance.random_counts[i])
        << "graph " << i;
  }
}

TEST_F(FaultInjectionTest, StreamSealDefersRevisitsAndDrainsExactly) {
  StreamOptions sopts;
  sopts.delta = 10;
  sopts.k = 5;
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  StreamingMotifMonitor faulted(motif, sopts);
  StreamingMotifMonitor reference(motif, sopts);

  const std::vector<InteractionGraph::Edge> epoch1 = {
      {0, 1, 5, 2.0}, {1, 2, 7, 3.0}, {0, 1, 8, 1.0}};
  const std::vector<InteractionGraph::Edge> epoch2 = {
      {0, 1, 9, 4.0}, {1, 2, 14, 2.0}, {0, 1, 15, 1.0}};
  for (const InteractionGraph::Edge& e : epoch1) {
    ASSERT_TRUE(faulted.Append(e).ok());
    ASSERT_TRUE(reference.Append(e).ok());
  }
  ASSERT_TRUE(faulted.SealEpoch().termination.complete());
  ASSERT_TRUE(reference.SealEpoch().termination.complete());
  for (const InteractionGraph::Edge& e : epoch2) {
    ASSERT_TRUE(faulted.Append(e).ok());
    ASSERT_TRUE(reference.Append(e).ok());
  }

  // Stop the faulted monitor's seal on its very first revisit: every
  // revisit is deferred, the seal reports kCancelled, and the aggregates
  // lag the new snapshot.
  failpoint::Config config;
  config.action = failpoint::Action::kCancel;
  failpoint::Arm(failpoint::kStreamRevisit, config);
  const StreamingMotifMonitor::EpochStats stopped = faulted.SealEpoch();
  failpoint::DisarmAll();
  EXPECT_EQ(stopped.termination.code, TerminationCode::kCancelled);
  EXPECT_EQ(stopped.termination.stopped_at, failpoint::kStreamRevisit);
  EXPECT_EQ(stopped.num_matches_revisited, 0u);
  ASSERT_GT(stopped.num_revisits_deferred, 0);

  const StreamingMotifMonitor::EpochStats ref_stats = reference.SealEpoch();
  ASSERT_TRUE(ref_stats.termination.complete());

  // A clean empty-tail seal drains the deferred revisits against the
  // unchanged snapshot; the monitors are byte-identical afterwards.
  const StreamingMotifMonitor::EpochStats drained = faulted.SealEpoch();
  EXPECT_TRUE(drained.termination.complete());
  EXPECT_EQ(drained.num_revisits_deferred, 0);
  EXPECT_GT(drained.num_matches_revisited, 0u);

  EXPECT_EQ(faulted.TotalInstances(), reference.TotalInstances());
  EXPECT_EQ(faulted.LiveInstances(), reference.LiveInstances());
  const std::vector<TopKEntry> faulted_topk = faulted.TopK();
  const std::vector<TopKEntry> reference_topk = reference.TopK();
  ASSERT_EQ(faulted_topk.size(), reference_topk.size());
  for (size_t i = 0; i < faulted_topk.size(); ++i) {
    EXPECT_EQ(faulted_topk[i].flow, reference_topk[i].flow) << i;
    EXPECT_EQ(faulted_topk[i].instance, reference_topk[i].instance) << i;
  }
}

TEST_F(FaultInjectionTest, InvalidOptionsRejectedWithoutCrash) {
  const Workload& w = SharedWorkload();
  const QueryEngine engine(w.graph);

  QueryOptions bad;
  bad.mode = QueryMode::kTopK;
  bad.delta = w.delta;
  bad.k = 0;  // kTopK requires k >= 1
  const QueryResult result = engine.Run(w.motif, bad);
  EXPECT_EQ(result.termination.code, TerminationCode::kError);
  EXPECT_EQ(result.termination.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.termination.work_completed, 0);

  QueryOptions negative;
  negative.mode = QueryMode::kCount;
  negative.delta = -1;
  const QueryResult result2 = engine.Run(w.motif, negative);
  EXPECT_EQ(result2.termination.code, TerminationCode::kError);
  EXPECT_EQ(result2.termination.status.code(), StatusCode::kInvalidArgument);

  // The same engine still answers a well-formed query.
  QueryOptions good;
  good.mode = QueryMode::kCount;
  good.delta = w.delta;
  const QueryResult ok = engine.Run(w.motif, good);
  EXPECT_TRUE(ok.termination.complete());
}

}  // namespace
}  // namespace flowmotif
