// The live-serving contract (DESIGN.md Sec. 11): a QueryService over an
// EpochLog must answer — at every sealed epoch — byte-identically to a
// solo QueryEngine run on the same sealed snapshot, while seals swap
// the served graph underneath concurrent submissions. Seeded random
// append schedules (the stream_equivalence_test idiom: non-decreasing
// timestamps with duplicates, growing vertex universes, varying epoch
// sizes) are replayed into a service with the generational cross-query
// tier enabled, interleaving submit / seal / submit. Also pinned down:
// in-flight and queued requests keep their submit-time snapshot across
// a seal, the completed-result cache invalidates exactly at real seals
// (no-op seals keep it warm), tier entries for series untouched by a
// seal stay warm across epochs, and a tiny generational tier rotates
// instead of freezing. The schedule suite is a TSan target (see
// .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "serve/query_service.h"

namespace flowmotif {
namespace {

/// A reusable open-once gate for deterministic schedules.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

struct Schedule {
  std::vector<InteractionGraph::Edge> seed;  // epoch 0 (may be empty)
  std::vector<std::vector<InteractionGraph::Edge>> epochs;
};

/// One seeded random append schedule: non-decreasing timestamps with
/// frequent duplicates, a vertex universe that can grow mid-stream
/// (new-pair and new-vertex seals), epoch sizes from 1 to ~10, and an
/// optional static seed prefix.
Schedule MakeSchedule(uint64_t seed_value) {
  std::mt19937_64 rng(seed_value);
  Schedule schedule;

  const int initial_vertices = 4 + static_cast<int>(rng() % 4);  // 4..7
  const int max_vertices = initial_vertices + static_cast<int>(rng() % 4);
  int vertices = initial_vertices;
  Timestamp t = static_cast<Timestamp>(rng() % 50);

  const auto random_edge = [&]() {
    // Occasionally let the universe grow so some seals change topology.
    if (vertices < max_vertices && rng() % 12 == 0) ++vertices;
    const VertexId src = static_cast<VertexId>(rng() % vertices);
    VertexId dst = static_cast<VertexId>(rng() % vertices);
    if (src == dst) dst = (dst + 1) % vertices;
    t += static_cast<Timestamp>(rng() % 4);  // 0 keeps duplicate times
    const Flow f = static_cast<Flow>(1 + rng() % 9);
    return InteractionGraph::Edge{src, dst, t, f};
  };

  const size_t num_seed_edges = rng() % 25;  // sometimes empty
  for (size_t i = 0; i < num_seed_edges; ++i) {
    schedule.seed.push_back(random_edge());
  }
  const size_t num_epochs = 4 + rng() % 6;  // 4..9
  schedule.epochs.resize(num_epochs);
  for (std::vector<InteractionGraph::Edge>& epoch : schedule.epochs) {
    const size_t n = 1 + rng() % 10;
    for (size_t i = 0; i < n; ++i) epoch.push_back(random_edge());
  }
  return schedule;
}

TimeSeriesGraph BuildSeedGraph(const Schedule& schedule) {
  InteractionGraph multigraph;
  for (const InteractionGraph::Edge& e : schedule.seed) {
    const Status status = multigraph.AddEdge(e.src, e.dst, e.t, e.f);
    EXPECT_TRUE(status.ok()) << status;
  }
  return TimeSeriesGraph::Build(multigraph);
}

/// The deterministic payload comparison: everything a served query
/// returns must equal the solo run, in every mode.
void ExpectSameResult(const QueryResult& served, const QueryResult& solo,
                      const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(served.mode, solo.mode);
  EXPECT_EQ(served.stats.num_instances, solo.stats.num_instances);
  EXPECT_EQ(served.stats.num_structural_matches,
            solo.stats.num_structural_matches);
  EXPECT_EQ(served.stats.num_phi_prunes, solo.stats.num_phi_prunes);
  ASSERT_EQ(served.instances.size(), solo.instances.size());
  for (size_t i = 0; i < served.instances.size(); ++i) {
    EXPECT_EQ(served.instances[i], solo.instances[i]) << "instance " << i;
  }
  ASSERT_EQ(served.topk.size(), solo.topk.size());
  for (size_t i = 0; i < served.topk.size(); ++i) {
    EXPECT_EQ(served.topk[i].flow, solo.topk[i].flow) << "topk " << i;
    EXPECT_EQ(served.topk[i].instance, solo.topk[i].instance) << "topk " << i;
  }
  EXPECT_EQ(served.top1.found, solo.top1.found);
  EXPECT_EQ(served.top1.max_flow, solo.top1.max_flow);
  if (served.top1.found && solo.top1.found) {
    EXPECT_EQ(served.top1.best, solo.top1.best);
  }
}

struct Case {
  const char* motif_name;
  QueryOptions options;
};

std::vector<Case> MixedCases(Timestamp delta) {
  std::vector<Case> cases;
  QueryOptions count;
  count.mode = QueryMode::kCount;
  count.delta = delta;
  cases.push_back({"M(3,2)", count});

  QueryOptions topk;
  topk.mode = QueryMode::kTopK;
  topk.delta = delta;
  topk.k = 3;
  cases.push_back({"M(3,2)", topk});

  QueryOptions top1;
  top1.mode = QueryMode::kTop1;
  top1.delta = delta;
  cases.push_back({"M(5,4)", top1});
  return cases;
}

QueryResult SoloRun(const TimeSeriesGraph& graph, const Case& c) {
  const QueryEngine engine(graph);
  QueryOptions options = c.options;
  options.num_threads = 1;
  return engine.Run(*MotifCatalog::ByName(c.motif_name), options);
}

TEST(ServingEpochTest, SealedServingMatchesFreshEngineAcrossSchedules) {
  // The headline equivalence lock: 50 seeded append schedules, and at
  // every seal the concurrently served results (2 workers, generational
  // tier warm across epochs) are byte-identical to solo engine runs on
  // that sealed snapshot.
  constexpr Timestamp kDelta = 20;
  constexpr uint64_t kNumSchedules = 50;
  const std::vector<Case> cases = MixedCases(kDelta);

  for (uint64_t seed = 0; seed < kNumSchedules; ++seed) {
    const Schedule schedule = MakeSchedule(seed);
    ServiceConfig config;
    config.num_workers = 2;
    config.max_concurrent = 2;
    config.enable_dedup = false;         // every submission must run
    config.enable_result_cache = false;  // repeats across seals included
    QueryService service(BuildSeedGraph(schedule), config);

    for (size_t e = 0; e < schedule.epochs.size(); ++e) {
      for (const InteractionGraph::Edge& edge : schedule.epochs[e]) {
        const Status status = service.Append(edge);
        ASSERT_TRUE(status.ok()) << status;
      }
      const EpochLog::SealInfo info = service.SealEpoch();
      ASSERT_EQ(info.num_appended, schedule.epochs[e].size());
      ASSERT_EQ(service.epoch(), info.epoch);
      ASSERT_EQ(service.Snapshot().get(), info.graph.get());

      // Submit the whole mixed batch concurrently, then compare each
      // against a fresh solo engine on the sealed snapshot.
      std::vector<std::future<ServedResult>> futures;
      futures.reserve(cases.size());
      for (const Case& c : cases) {
        ServeRequest request{*MotifCatalog::ByName(c.motif_name), c.options};
        futures.push_back(service.Submit(std::move(request)));
      }
      for (size_t i = 0; i < cases.size(); ++i) {
        const ServedResult served = futures[i].get();
        ASSERT_FALSE(served.rejected);
        ASSERT_TRUE(served.result->termination.complete())
            << served.result->termination.ToString();
        EXPECT_EQ(served.epoch, info.epoch);
        ExpectSameResult(*served.result, SoloRun(*info.graph, cases[i]),
                         "schedule " + std::to_string(seed) + " epoch " +
                             std::to_string(e) + " case " + std::to_string(i));
      }
    }
  }
}

TEST(ServingEpochTest, InFlightAndQueuedRequestsKeepTheirSubmitSnapshot) {
  // A seal must not change what an already-submitted request answers:
  // both the running (gated) request and the one queued behind it were
  // submitted pre-seal, so both run against the pre-seal snapshot even
  // though the seal lands while they are in flight — the shared_ptr
  // keeps that snapshot alive after the service republishes.
  constexpr Timestamp kDelta = 20;
  const Schedule schedule = MakeSchedule(7);
  ServiceConfig config;
  config.num_workers = 2;
  config.max_concurrent = 1;  // the second request queues
  config.enable_dedup = false;
  config.enable_result_cache = false;
  QueryService service(BuildSeedGraph(schedule), config);

  const std::shared_ptr<const TimeSeriesGraph> before = service.Snapshot();
  const EpochId epoch_before = service.epoch();
  const Case count_case = MixedCases(kDelta)[0];

  Gate gate;
  ServeRequest running{*MotifCatalog::ByName(count_case.motif_name),
                       count_case.options};
  running.on_start = [&gate] { gate.Wait(); };
  std::future<ServedResult> running_future = service.Submit(std::move(running));
  ServeRequest queued{*MotifCatalog::ByName(count_case.motif_name),
                      count_case.options};
  std::future<ServedResult> queued_future = service.Submit(std::move(queued));

  for (const InteractionGraph::Edge& edge : schedule.epochs[0]) {
    ASSERT_TRUE(service.Append(edge).ok());
  }
  const EpochLog::SealInfo info = service.SealEpoch();
  ASSERT_GT(info.num_appended, 0u);
  ASSERT_NE(info.graph.get(), before.get());
  gate.Open();

  const QueryResult pre_seal_solo = SoloRun(*before, count_case);
  for (auto* future : {&running_future, &queued_future}) {
    const ServedResult served = future->get();
    ASSERT_TRUE(served.result->termination.complete());
    EXPECT_EQ(served.epoch, epoch_before);
    ExpectSameResult(*served.result, pre_seal_solo, "pre-seal submission");
  }

  // A post-seal submission serves the new snapshot.
  ServeRequest fresh{*MotifCatalog::ByName(count_case.motif_name),
                     count_case.options};
  const ServedResult after = service.Submit(std::move(fresh)).get();
  EXPECT_EQ(after.epoch, info.epoch);
  ExpectSameResult(*after.result, SoloRun(*info.graph, count_case),
                   "post-seal submission");
}

TEST(ServingEpochTest, ResultCacheInvalidatesExactlyAtRealSeals) {
  constexpr Timestamp kDelta = 20;
  const Schedule schedule = MakeSchedule(11);
  ServiceConfig config;
  config.num_workers = 1;  // serial: repeats submit after completion
  config.enable_dedup = false;
  QueryService service(BuildSeedGraph(schedule), config);
  const Case count_case = MixedCases(kDelta)[0];

  const auto submit = [&service, &count_case] {
    ServeRequest request{*MotifCatalog::ByName(count_case.motif_name),
                         count_case.options};
    return service.Submit(std::move(request)).get();
  };

  const ServedResult first = submit();
  ASSERT_TRUE(first.result->termination.complete());
  EXPECT_FALSE(first.from_result_cache);
  EXPECT_TRUE(submit().from_result_cache);

  // A no-op seal (empty tail) publishes nothing and invalidates
  // nothing: the repeat is still free.
  const EpochLog::SealInfo noop = service.SealEpoch();
  EXPECT_EQ(noop.num_appended, 0u);
  EXPECT_TRUE(submit().from_result_cache);
  EXPECT_EQ(service.Stats().seals, 0);

  // A real seal swaps the snapshot: the cached pre-seal result must not
  // answer post-seal submissions — the repeat re-runs on the new
  // snapshot and matches a fresh engine, then repeats are free again.
  for (const InteractionGraph::Edge& edge : schedule.epochs[0]) {
    ASSERT_TRUE(service.Append(edge).ok());
  }
  const EpochLog::SealInfo info = service.SealEpoch();
  ASSERT_GT(info.num_appended, 0u);
  const ServedResult reran = submit();
  EXPECT_FALSE(reran.from_result_cache);
  ExpectSameResult(*reran.result, SoloRun(*info.graph, count_case),
                   "post-seal rerun");
  EXPECT_TRUE(submit().from_result_cache);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.seals, 1);
  EXPECT_EQ(stats.result_cache_hits, 3);
  EXPECT_EQ(stats.completed, 2);
}

TEST(ServingEpochTest, TierStaysWarmAcrossSealsForUntouchedSeries) {
  // StorageIdentity keys survive a seal for series the seal did not
  // touch: appending only to one hot pair and resealing must leave the
  // other pairs' tier entries warm — the repeated query hits the tier
  // again instead of recomputing every window list from scratch.
  InteractionGraph multigraph;
  // A deterministic seed with several M(3,2) paths over vertices 0..4.
  const InteractionGraph::Edge seed_edges[] = {
      {0, 1, 10, 2.0}, {1, 2, 12, 3.0}, {2, 3, 14, 1.0}, {3, 4, 16, 2.0},
      {1, 3, 18, 4.0}, {0, 2, 20, 1.0}, {2, 4, 22, 5.0}, {4, 0, 24, 2.0},
  };
  for (const InteractionGraph::Edge& e : seed_edges) {
    ASSERT_TRUE(multigraph.AddEdge(e.src, e.dst, e.t, e.f).ok());
  }

  ServiceConfig config;
  config.num_workers = 1;
  config.enable_dedup = false;
  config.enable_result_cache = false;  // the repeat must reach the tier
  QueryService service(TimeSeriesGraph::Build(multigraph), config);

  Case count_case = MixedCases(30)[0];
  const auto submit = [&service, &count_case] {
    ServeRequest request{*MotifCatalog::ByName(count_case.motif_name),
                         count_case.options};
    return service.Submit(std::move(request)).get();
  };

  ASSERT_TRUE(submit().result->termination.complete());  // warms the tier
  const ServiceStats cold = service.Stats();

  // Touch exactly one pair; every other series keeps its storage.
  ASSERT_TRUE(service.Append(0, 1, 30, 1.0).ok());
  const EpochLog::SealInfo info = service.SealEpoch();
  ASSERT_EQ(info.dirty_pairs.size(), 1u);

  const ServedResult warm = submit();
  ASSERT_TRUE(warm.result->termination.complete());
  ExpectSameResult(*warm.result, SoloRun(*info.graph, count_case),
                   "post-seal repeat");
  const ServiceStats after = service.Stats();
  // The post-seal repeat hit the tier for the untouched series' pairs.
  EXPECT_GT(after.tier_hits, cold.tier_hits);
}

TEST(ServingEpochTest, TinyGenerationalTierRotatesInsteadOfFreezing) {
  // With a tier cap far below the working set, the saturating tier
  // freezes on its first entries forever; the generational tier must
  // rotate (counted) and keep serving byte-identical results.
  constexpr Timestamp kDelta = 20;
  const Schedule schedule = MakeSchedule(3);
  const std::vector<Case> cases = MixedCases(kDelta);

  for (const bool generational : {true, false}) {
    ServiceConfig config;
    config.num_workers = 1;
    config.enable_dedup = false;
    config.enable_result_cache = false;
    config.tier_generational = generational;
    config.tier_max_entries = 2;  // far below the pair working set
    QueryService service(BuildSeedGraph(schedule), config);
    for (const InteractionGraph::Edge& edge : schedule.epochs[0]) {
      ASSERT_TRUE(service.Append(edge).ok());
    }
    const EpochLog::SealInfo info = service.SealEpoch();

    for (int round = 0; round < 3; ++round) {
      for (const Case& c : cases) {
        ServeRequest request{*MotifCatalog::ByName(c.motif_name), c.options};
        const ServedResult served = service.Submit(std::move(request)).get();
        ASSERT_TRUE(served.result->termination.complete());
        ExpectSameResult(*served.result, SoloRun(*info.graph, c),
                         std::string(generational ? "generational" :
                                                    "saturating") +
                             " round " + std::to_string(round));
      }
    }
    const ServiceStats stats = service.Stats();
    if (generational) {
      EXPECT_GT(stats.tier_rotations, 0);
    } else {
      EXPECT_EQ(stats.tier_rotations, 0);
    }
  }
}

}  // namespace
}  // namespace flowmotif
