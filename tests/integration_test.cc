// End-to-end pipeline: generate a dataset -> save to disk -> reload ->
// enumerate motifs -> top-k / DP agreement -> significance analysis.
// This exercises every public subsystem the way the example programs and
// benches do.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/dp.h"
#include "core/enumerator.h"
#include "core/join_baseline.h"
#include "core/motif_catalog.h"
#include "core/significance.h"
#include "core/structural_match.h"
#include "core/topk.h"
#include "gen/presets.h"
#include "graph/graph_io.h"
#include "graph/time_slice.h"

namespace flowmotif {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "integration_graph.txt";
    graph_ = GenerateDataset(GetPreset(DatasetKind::kPassenger), 0.15);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  TimeSeriesGraph graph_;
};

TEST_F(IntegrationTest, FullPipeline) {
  // 1. Persist and reload.
  ASSERT_TRUE(SaveTimeSeriesGraph(graph_, path_).ok());
  StatusOr<InteractionGraph> loaded = LoadInteractionGraph(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  TimeSeriesGraph reloaded = TimeSeriesGraph::Build(*loaded);
  EXPECT_EQ(reloaded.ComputeStats().num_interactions,
            graph_.ComputeStats().num_interactions);

  // 2. Enumerate a motif on both copies: identical results.
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  EnumerationOptions options;
  options.delta = 900;
  options.phi = 2.0;
  EnumerationResult original =
      FlowMotifEnumerator(graph_, motif, options).Run();
  EnumerationResult roundtrip =
      FlowMotifEnumerator(reloaded, motif, options).Run();
  EXPECT_EQ(original.num_instances, roundtrip.num_instances);
  EXPECT_EQ(original.num_structural_matches,
            roundtrip.num_structural_matches);
  EXPECT_GT(original.num_instances, 0) << "pipeline should find motifs";

  // 3. Join baseline agrees with the two-phase algorithm.
  JoinMotifEnumerator join(graph_, motif, options.delta, options.phi);
  EXPECT_EQ(join.Run().num_instances, original.num_instances);

  // 4. DP top-1 agrees with top-k(k=1).
  MaxFlowDpSearcher dp(graph_, motif, options.delta);
  TopKSearcher topk(graph_, motif, options.delta, 1);
  MaxFlowDpSearcher::Result dp_result = dp.Run();
  TopKSearcher::Result topk_result = topk.Run();
  ASSERT_TRUE(dp_result.found);
  ASSERT_FALSE(topk_result.entries.empty());
  EXPECT_DOUBLE_EQ(dp_result.max_flow, topk_result.entries[0].flow);

  // 5. Significance: deterministic and fully populated.
  SignificanceAnalyzer::Options sig_options;
  sig_options.num_random_graphs = 3;
  sig_options.seed = 77;
  sig_options.delta = options.delta;
  sig_options.phi = options.phi;
  SignificanceAnalyzer analyzer(graph_, sig_options);
  SignificanceAnalyzer::MotifReport report = analyzer.Analyze(motif);
  EXPECT_EQ(report.real_count, original.num_instances);
  EXPECT_EQ(report.random_counts.size(), 3u);
}

TEST_F(IntegrationTest, TimePrefixScalingPipeline) {
  // The Fig. 13 pipeline: enumerate on growing time-prefix samples.
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  EnumerationOptions options;
  options.delta = 900;
  options.phi = 2.0;

  int64_t prev_edges = -1;
  for (Timestamp cut : EqualTimePrefixes(graph_, 4)) {
    TimeSeriesGraph sample = SliceByMaxTime(graph_, cut);
    int64_t edges = sample.ComputeStats().num_interactions;
    EXPECT_GE(edges, prev_edges);
    prev_edges = edges;
    EnumerationResult result =
        FlowMotifEnumerator(sample, motif, options).Run();
    EXPECT_GE(result.num_instances, 0);
  }
}

TEST_F(IntegrationTest, CatalogSweepOnGeneratedData) {
  // Every catalog motif enumerates without error and phase counters are
  // consistent.
  EnumerationOptions options;
  options.delta = 900;
  options.phi = 2.0;
  for (const Motif& motif : MotifCatalog::All()) {
    FlowMotifEnumerator enumerator(graph_, motif, options);
    EnumerationResult result = enumerator.Run();
    StructuralMatcher matcher(graph_, motif);
    EXPECT_EQ(result.num_structural_matches, matcher.CountMatches())
        << motif.name();
  }
}

}  // namespace
}  // namespace flowmotif
