#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace flowmotif {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return argv;
}

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  FlagParser flags;
  flags.AddInt64("n", 7, "count");
  flags.AddString("name", "x", "name");
  flags.AddBool("verbose", false, "verbosity");
  flags.AddDouble("ratio", 0.5, "ratio");
  auto argv = Argv({});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetInt64("n"), 7);
  EXPECT_EQ(flags.GetString("name"), "x");
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.5);
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser flags;
  flags.AddInt64("n", 0, "");
  flags.AddDouble("d", 0, "");
  flags.AddString("s", "", "");
  auto argv = Argv({"--n=42", "--d=2.5", "--s=hello"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetInt64("n"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d"), 2.5);
  EXPECT_EQ(flags.GetString("s"), "hello");
}

TEST(FlagsTest, SpaceSeparatedValueSyntax) {
  FlagParser flags;
  flags.AddInt64("n", 0, "");
  auto argv = Argv({"--n", "99"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetInt64("n"), 99);
}

TEST(FlagsTest, BoolForms) {
  FlagParser flags;
  flags.AddBool("a", false, "");
  flags.AddBool("b", true, "");
  flags.AddBool("c", false, "");
  auto argv = Argv({"--a", "--no-b", "--c=true"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
  EXPECT_TRUE(flags.GetBool("c"));
}

TEST(FlagsTest, NegativeNumbers) {
  FlagParser flags;
  flags.AddInt64("n", 0, "");
  flags.AddDouble("d", 0, "");
  auto argv = Argv({"--n=-5", "--d=-1.25"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetInt64("n"), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d"), -1.25);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagParser flags;
  flags.AddInt64("n", 0, "");
  auto argv = Argv({"input.txt", "--n=1", "output.txt"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagParser flags;
  auto argv = Argv({"--mystery=1"});
  Status s = flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntegerIsError) {
  FlagParser flags;
  flags.AddInt64("n", 0, "");
  auto argv = Argv({"--n=abc"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, BadBoolIsError) {
  FlagParser flags;
  flags.AddBool("b", false, "");
  auto argv = Argv({"--b=maybe"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, MissingValueIsError) {
  FlagParser flags;
  flags.AddInt64("n", 0, "");
  auto argv = Argv({"--n"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, HelpStringListsFlags) {
  FlagParser flags;
  flags.AddInt64("alpha", 1, "the alpha knob");
  flags.AddBool("beta", true, "the beta switch");
  std::string help = flags.HelpString();
  EXPECT_NE(help.find("--alpha"), std::string::npos);
  EXPECT_NE(help.find("the alpha knob"), std::string::npos);
  EXPECT_NE(help.find("--beta"), std::string::npos);
}

TEST(FlagsTest, ValidateThreadsFlagBounds) {
  EXPECT_TRUE(ValidateThreadsFlag(0).ok());  // 0 = all hardware threads
  EXPECT_TRUE(ValidateThreadsFlag(1).ok());
  EXPECT_TRUE(ValidateThreadsFlag(4096).ok());
  EXPECT_FALSE(ValidateThreadsFlag(-1).ok());
  EXPECT_FALSE(ValidateThreadsFlag(4097).ok());
  // The message names the flag so CLI/bench rejections read clearly.
  EXPECT_NE(ValidateThreadsFlag(-2).message().find("--threads"),
            std::string::npos);
}

TEST(FlagsDeathTest, UnregisteredAccessAborts) {
  FlagParser flags;
  EXPECT_DEATH(flags.GetInt64("ghost"), "unregistered flag");
}

TEST(FlagsDeathTest, TypeMismatchAborts) {
  FlagParser flags;
  flags.AddInt64("n", 0, "");
  EXPECT_DEATH(flags.GetString("n"), "type mismatch");
}

}  // namespace
}  // namespace flowmotif
