// The serving layer's contract (DESIGN.md Sec. 11): a QueryService
// fans many concurrent queries over one immutable graph and must stay
// byte-identical to solo QueryEngine runs — the cross-query cache tier
// and the scheduler may change where window lists are found and when
// queries run, never what they return. Admission control, tenant
// fairness, in-flight dedup, and config-default deadlines are pinned
// down with gated (never sleep-racy) schedules. The concurrent
// stress test is a TSan target (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "gen/presets.h"
#include "serve/query_service.h"
#include "util/cancellation.h"
#include "util/failpoint.h"

namespace flowmotif {
namespace {

const TimeSeriesGraph& SharedGraph() {
  static const TimeSeriesGraph* graph = [] {
    return new TimeSeriesGraph(GenerateDataset(AllPresets().front(), 0.05));
  }();
  return *graph;
}

Timestamp SharedDelta() { return AllPresets().front().default_delta; }

/// A reusable open-once gate for deterministic schedules.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// The deterministic payload comparison: everything a served query
/// returns must equal the solo run, in every mode.
void ExpectSameResult(const QueryResult& served, const QueryResult& solo,
                      const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(served.mode, solo.mode);
  EXPECT_EQ(served.stats.num_instances, solo.stats.num_instances);
  EXPECT_EQ(served.stats.num_structural_matches,
            solo.stats.num_structural_matches);
  EXPECT_EQ(served.stats.num_phi_prunes, solo.stats.num_phi_prunes);
  ASSERT_EQ(served.instances.size(), solo.instances.size());
  for (size_t i = 0; i < served.instances.size(); ++i) {
    EXPECT_EQ(served.instances[i], solo.instances[i]) << "instance " << i;
  }
  ASSERT_EQ(served.topk.size(), solo.topk.size());
  for (size_t i = 0; i < served.topk.size(); ++i) {
    EXPECT_EQ(served.topk[i].flow, solo.topk[i].flow) << "topk " << i;
    EXPECT_EQ(served.topk[i].instance, solo.topk[i].instance) << "topk " << i;
  }
  EXPECT_EQ(served.top1.found, solo.top1.found);
  EXPECT_EQ(served.top1.max_flow, solo.top1.max_flow);
  if (served.top1.found && solo.top1.found) {
    EXPECT_EQ(served.top1.best, solo.top1.best);
  }
  if (served.mode == QueryMode::kSignificance) {
    EXPECT_EQ(served.significance.real_count, solo.significance.real_count);
    EXPECT_EQ(served.significance.random_counts,
              solo.significance.random_counts);
    EXPECT_EQ(served.significance.z_score, solo.significance.z_score);
    EXPECT_EQ(served.significance.p_value, solo.significance.p_value);
  }
}

TEST(ServingTest, ConcurrentMixedQueriesAreByteIdenticalToSoloRuns) {
  // The stress path: 4 workers, two motifs (interior and not), two
  // deltas (two tier instances), every query mode, each submitted three
  // times so later rounds hit the cross-query tier — every result must
  // equal a solo 1-thread engine run without any serving machinery.
  struct Case {
    const char* motif_name;
    QueryOptions options;
  };
  std::vector<Case> cases;
  const Timestamp delta = SharedDelta();
  for (const char* motif : {"M(3,2)", "M(5,4)"}) {
    for (const Timestamp d : {delta, delta / 2}) {
      QueryOptions count;
      count.mode = QueryMode::kCount;
      count.delta = d;
      cases.push_back({motif, count});

      QueryOptions enumerate;
      enumerate.mode = QueryMode::kEnumerate;
      enumerate.delta = d;
      enumerate.collect_limit = -1;
      cases.push_back({motif, enumerate});

      QueryOptions topk;
      topk.mode = QueryMode::kTopK;
      topk.delta = d;
      topk.k = 5;
      cases.push_back({motif, topk});

      QueryOptions top1;
      top1.mode = QueryMode::kTop1;
      top1.delta = d;
      cases.push_back({motif, top1});
    }
  }
  QueryOptions significance;
  significance.mode = QueryMode::kSignificance;
  significance.delta = delta;
  significance.num_random_graphs = 4;
  significance.seed = 7;
  cases.push_back({"M(3,2)", significance});

  // Solo references: fresh engine, no tier, serial.
  const QueryEngine solo_engine(SharedGraph());
  std::vector<QueryResult> solo;
  solo.reserve(cases.size());
  for (const Case& c : cases) {
    solo.push_back(
        solo_engine.Run(*MotifCatalog::ByName(c.motif_name), c.options));
    ASSERT_TRUE(solo.back().termination.complete());
  }

  ServiceConfig config;
  config.num_workers = 4;
  config.max_concurrent = 4;
  config.enable_dedup = false;        // every submission must really run
  config.enable_result_cache = false;  // repeats across rounds included
  QueryService service(SharedGraph(), config);

  constexpr int kRounds = 3;
  std::vector<std::future<ServedResult>> futures;
  for (int round = 0; round < kRounds; ++round) {
    for (const Case& c : cases) {
      ServeRequest request{*MotifCatalog::ByName(c.motif_name), c.options};
      futures.push_back(service.Submit(std::move(request)));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const ServedResult served = futures[i].get();
    ASSERT_FALSE(served.rejected);
    ASSERT_TRUE(served.result->termination.complete())
        << served.result->termination.ToString();
    ExpectSameResult(*served.result, solo[i % cases.size()],
                     "submission " + std::to_string(i));
  }

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(futures.size()));
  EXPECT_EQ(stats.completed, static_cast<int64_t>(futures.size()));
  EXPECT_EQ(stats.rejected, 0);
  // The repeated rounds re-present every window-list pair to the tier.
  EXPECT_GT(stats.tier_lookups, 0);
  EXPECT_GT(stats.tier_hits, 0);
}

TEST(ServingTest, CacheTierServesRepeatedQueriesOfNonInteriorMotifs) {
  // M(3,2) has no interior node: within one query no (first, last) pair
  // repeats, so a per-query cache alone never pays. Across queries the
  // pairs DO repeat — the tier makes the motif cache-eligible
  // (ShouldUseWindowCache's has_fallback_tier arm) and the second
  // identical query's window lists come out of the tier.
  ServiceConfig config;
  config.num_workers = 1;  // serial, deterministic hit accounting
  config.enable_dedup = false;
  config.enable_result_cache = false;  // the repeat must re-run (via tier)
  QueryService service(SharedGraph(), config);

  ServeRequest request{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  request.options.mode = QueryMode::kCount;
  request.options.delta = SharedDelta();

  const ServedResult first = service.Submit(ServeRequest(request)).get();
  ASSERT_TRUE(first.result->termination.complete());
  const ServiceStats after_first = service.Stats();
  EXPECT_GT(after_first.tier_lookups, 0);
  EXPECT_EQ(after_first.tier_hits, 0);  // cold tier: all misses

  const ServedResult second = service.Submit(ServeRequest(request)).get();
  ASSERT_TRUE(second.result->termination.complete());
  EXPECT_EQ(second.result->stats.num_instances,
            first.result->stats.num_instances);
  const ServiceStats after_second = service.Stats();
  // Warm tier: the second query's lookups all hit.
  EXPECT_EQ(after_second.tier_hits,
            after_second.tier_lookups - after_first.tier_lookups);
  EXPECT_GT(after_second.tier_hits, 0);
}

TEST(ServingTest, IdenticalInflightSubmissionsCoalesce) {
  ServiceConfig config;
  config.num_workers = 2;
  config.max_concurrent = 2;
  QueryService service(SharedGraph(), config);

  Gate gate;
  ServeRequest leader{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  leader.options.mode = QueryMode::kCount;
  leader.options.delta = SharedDelta();
  leader.on_start = [&gate] { gate.Wait(); };

  std::future<ServedResult> leader_future = service.Submit(std::move(leader));

  constexpr int kFollowers = 5;
  std::vector<std::future<ServedResult>> followers;
  for (int i = 0; i < kFollowers; ++i) {
    ServeRequest follower{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
    follower.options.mode = QueryMode::kCount;
    follower.options.delta = SharedDelta();
    followers.push_back(service.Submit(std::move(follower)));
  }
  gate.Open();

  const ServedResult led = leader_future.get();
  ASSERT_TRUE(led.result->termination.complete());
  EXPECT_FALSE(led.coalesced);
  for (std::future<ServedResult>& f : followers) {
    const ServedResult follower = f.get();
    EXPECT_TRUE(follower.coalesced);
    EXPECT_EQ(follower.result.get(), led.result.get());  // shared, not rerun
    EXPECT_EQ(follower.admission_sequence, led.admission_sequence);
  }

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 1 + kFollowers);
  EXPECT_EQ(stats.completed, 1);  // one engine run served all six
  EXPECT_EQ(stats.coalesced, kFollowers);
}

TEST(ServingTest, FullAdmissionQueueRejectsInsteadOfBlocking) {
  ServiceConfig config;
  config.num_workers = 2;
  config.max_concurrent = 1;
  config.max_queue_depth = 1;
  config.enable_dedup = false;
  QueryService service(SharedGraph(), config);

  Gate gate;
  auto request = [&gate](bool gated) {
    ServeRequest r{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
    r.options.mode = QueryMode::kCount;
    r.options.delta = SharedDelta();
    if (gated) r.on_start = [&gate] { gate.Wait(); };
    return r;
  };

  std::future<ServedResult> running = service.Submit(request(true));
  std::future<ServedResult> queued = service.Submit(request(false));
  std::future<ServedResult> overflow = service.Submit(request(false));

  // The overflow submission resolves immediately — before the gate
  // opens — with the kRejected termination at the admission site.
  ASSERT_EQ(overflow.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  const ServedResult rejected = overflow.get();
  EXPECT_TRUE(rejected.rejected);
  EXPECT_EQ(rejected.result->termination.code, TerminationCode::kRejected);
  EXPECT_EQ(rejected.result->termination.stopped_at, failpoint::kServeAdmit);
  EXPECT_EQ(rejected.admission_sequence, -1);

  gate.Open();
  EXPECT_TRUE(running.get().result->termination.complete());
  EXPECT_TRUE(queued.get().result->termination.complete());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(ServingTest, TenantCapSkipsQueuedTenantSoOthersRunFirst) {
  ServiceConfig config;
  config.num_workers = 2;
  config.max_concurrent = 2;
  config.per_tenant_max_running = 1;
  config.enable_dedup = false;
  QueryService service(SharedGraph(), config);

  Gate gate;
  auto request = [&gate](const std::string& tenant, bool gated) {
    ServeRequest r{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
    r.options.mode = QueryMode::kCount;
    r.options.delta = SharedDelta();
    r.tenant = tenant;
    if (gated) r.on_start = [&gate] { gate.Wait(); };
    return r;
  };

  // A1 runs (gated). A2 queues: tenant A is at its cap. B1, submitted
  // LATER than A2, must start anyway — the admission scan skips the
  // over-cap tenant instead of blocking the queue head.
  std::future<ServedResult> a1 = service.Submit(request("A", true));
  std::future<ServedResult> a2 = service.Submit(request("A", false));
  std::future<ServedResult> b1 = service.Submit(request("B", false));

  const ServedResult b1_result = b1.get();  // completes while A1 is gated
  ASSERT_TRUE(b1_result.result->termination.complete());

  gate.Open();
  const ServedResult a1_result = a1.get();
  const ServedResult a2_result = a2.get();
  ASSERT_TRUE(a1_result.result->termination.complete());
  ASSERT_TRUE(a2_result.result->termination.complete());

  // Start order: A1 (0), B1 (1) jumped the queued A2 (2).
  EXPECT_EQ(a1_result.admission_sequence, 0);
  EXPECT_EQ(b1_result.admission_sequence, 1);
  EXPECT_EQ(a2_result.admission_sequence, 2);
}

TEST(ServingTest, ConfigDefaultDeadlineCoversQueueWait) {
  ServiceConfig config;
  config.num_workers = 1;
  config.default_deadline_seconds = 0.02;
  config.enable_dedup = false;
  QueryService service(SharedGraph(), config);

  // The hook delays the run past the Submit-anchored default deadline:
  // the engine's first cancellation point catches it before any work.
  ServeRequest late{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  late.options.mode = QueryMode::kCount;
  late.options.delta = SharedDelta();
  late.on_start = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  };
  const ServedResult served = service.Submit(std::move(late)).get();
  EXPECT_FALSE(served.rejected);
  EXPECT_EQ(served.result->termination.code,
            TerminationCode::kDeadlineExceeded);
  EXPECT_EQ(served.result->termination.stopped_at, failpoint::kEngineStart);
  EXPECT_EQ(served.result->termination.work_completed, 0);

  // An explicit per-request deadline overrides the default.
  ServeRequest generous{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  generous.options.mode = QueryMode::kCount;
  generous.options.delta = SharedDelta();
  generous.options.deadline = QueryDeadline::AfterSeconds(3600.0);
  generous.on_start = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  };
  const ServedResult completed = service.Submit(std::move(generous)).get();
  EXPECT_TRUE(completed.result->termination.complete());
}

TEST(ServingTest, DedupSurvivesServiceDefaultLifecycleBounds) {
  // Regression (PR 10): dedup eligibility must be decided on the
  // caller-supplied options BEFORE service defaults are stamped.
  // Pre-fix, configuring default_deadline_seconds / default_budget
  // stamped every request with an active deadline/budget first, so the
  // eligibility check rejected every request and dedup was silently
  // disabled service-wide.
  ServiceConfig config;
  config.num_workers = 2;
  config.max_concurrent = 2;
  config.default_deadline_seconds = 3600.0;  // generous: nothing expires
  config.default_budget.max_matches = 1 << 30;
  config.enable_result_cache = false;  // isolate in-flight dedup
  QueryService service(SharedGraph(), config);

  Gate gate;
  ServeRequest leader{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  leader.options.mode = QueryMode::kCount;
  leader.options.delta = SharedDelta();
  leader.on_start = [&gate] { gate.Wait(); };
  std::future<ServedResult> leader_future = service.Submit(std::move(leader));

  // Identical caller options (no explicit lifecycle state): must attach
  // to the in-flight leader even though both carry the service-default
  // deadline + budget — those are identical across the coalesced set by
  // construction, and the shared run takes the leader's earlier anchor.
  ServeRequest follower{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  follower.options.mode = QueryMode::kCount;
  follower.options.delta = SharedDelta();
  std::future<ServedResult> follower_future =
      service.Submit(std::move(follower));
  gate.Open();

  const ServedResult led = leader_future.get();
  const ServedResult coalesced = follower_future.get();
  ASSERT_TRUE(led.result->termination.complete());
  EXPECT_TRUE(coalesced.coalesced);
  EXPECT_EQ(coalesced.result.get(), led.result.get());

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.coalesced, 1);
  EXPECT_EQ(stats.completed, 1);  // one engine run served both

  // An explicit per-request deadline still opts out: private lifecycle
  // state is never shared.
  Gate gate2;
  ServeRequest gated{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  gated.options.mode = QueryMode::kCount;
  gated.options.delta = SharedDelta();
  gated.on_start = [&gate2] { gate2.Wait(); };
  std::future<ServedResult> gated_future = service.Submit(std::move(gated));
  ServeRequest private_deadline{*MotifCatalog::ByName("M(3,2)"),
                                QueryOptions()};
  private_deadline.options.mode = QueryMode::kCount;
  private_deadline.options.delta = SharedDelta();
  private_deadline.options.deadline = QueryDeadline::AfterSeconds(3600.0);
  std::future<ServedResult> private_future =
      service.Submit(std::move(private_deadline));
  const ServedResult ran_alone = private_future.get();  // runs on worker 2
  EXPECT_FALSE(ran_alone.coalesced);
  gate2.Open();
  EXPECT_TRUE(gated_future.get().result->termination.complete());
  EXPECT_EQ(service.Stats().coalesced, 1);  // unchanged
}

TEST(ServingTest, QueuedRequestPastDeadlineResolvesAtAdmissionNotOnAWorker) {
  // Regression (PR 10): a queued request whose Submit-anchored deadline
  // expired must be resolved by the admission scan — kDeadlineExceeded
  // at "serve.admit" — without ever occupying a worker. Pre-fix,
  // AdmitFromQueueLocked never consulted the deadline: the dead request
  // was dispatched, its on_start hook ran, and the engine reported the
  // expiry at "engine.start" from a run slot a live request could have
  // used.
  ServiceConfig config;
  config.num_workers = 2;
  config.max_concurrent = 1;
  config.enable_dedup = false;
  config.enable_result_cache = false;
  QueryService service(SharedGraph(), config);

  Gate gate;
  ServeRequest blocker{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  blocker.options.mode = QueryMode::kCount;
  blocker.options.delta = SharedDelta();
  blocker.on_start = [&gate] { gate.Wait(); };
  std::future<ServedResult> blocker_future = service.Submit(std::move(blocker));

  std::atomic<bool> dead_request_started{false};
  ServeRequest dead{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  dead.options.mode = QueryMode::kCount;
  dead.options.delta = SharedDelta();
  dead.options.deadline = QueryDeadline::AfterMillis(5);
  dead.on_start = [&dead_request_started] { dead_request_started = true; };
  std::future<ServedResult> dead_future = service.Submit(std::move(dead));

  // Let the queued request's deadline lapse while the blocker holds the
  // only run slot, then release the blocker.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  gate.Open();

  const ServedResult expired = dead_future.get();
  EXPECT_EQ(expired.result->termination.code,
            TerminationCode::kDeadlineExceeded);
  EXPECT_EQ(expired.result->termination.stopped_at, failpoint::kServeAdmit);
  EXPECT_EQ(expired.result->termination.work_completed, 0);
  EXPECT_EQ(expired.admission_sequence, -1);  // never started
  EXPECT_FALSE(dead_request_started.load());  // never reached a worker

  EXPECT_TRUE(blocker_future.get().result->termination.complete());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.expired_in_queue, 1);
  EXPECT_EQ(stats.completed, 1);  // only the blocker ran
}

TEST(ServingTest, ResultCacheServesRepeatsAfterCompletion) {
  ServiceConfig config;
  config.num_workers = 1;  // serial: the repeat submits after completion
  config.enable_dedup = false;
  QueryService service(SharedGraph(), config);

  ServeRequest request{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  request.options.mode = QueryMode::kCount;
  request.options.delta = SharedDelta();

  const ServedResult first = service.Submit(ServeRequest(request)).get();
  ASSERT_TRUE(first.result->termination.complete());
  EXPECT_FALSE(first.from_result_cache);

  // Identical repeat after completion: answered from the cache — same
  // shared result object, no second engine run, producer's sequence.
  const ServedResult repeat = service.Submit(ServeRequest(request)).get();
  EXPECT_TRUE(repeat.from_result_cache);
  EXPECT_EQ(repeat.result.get(), first.result.get());
  EXPECT_EQ(repeat.admission_sequence, first.admission_sequence);

  // A result-affecting option change misses.
  ServeRequest other(request);
  other.options.mode = QueryMode::kTopK;
  other.options.k = 3;
  const ServedResult different = service.Submit(std::move(other)).get();
  EXPECT_FALSE(different.from_result_cache);

  // Private lifecycle state opts out of the cache, same as dedup.
  ServeRequest bounded(request);
  bounded.options.deadline = QueryDeadline::AfterSeconds(3600.0);
  const ServedResult uncached = service.Submit(std::move(bounded)).get();
  EXPECT_FALSE(uncached.from_result_cache);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.result_cache_hits, 1);
  EXPECT_EQ(stats.completed, 3);  // first + different + uncached
}

TEST(ServingTest, AdmissionFailpointInjectsTermination) {
  if (!failpoint::kFailpointsCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  failpoint::DisarmAll();
  ServiceConfig config;
  config.num_workers = 1;
  QueryService service(SharedGraph(), config);

  failpoint::Config fp;
  fp.action = failpoint::Action::kCancel;
  failpoint::Arm(failpoint::kServeAdmit, fp);
  ServeRequest request{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  request.options.mode = QueryMode::kCount;
  request.options.delta = SharedDelta();
  const ServedResult injected = service.Submit(std::move(request)).get();
  failpoint::DisarmAll();

  EXPECT_TRUE(injected.rejected);
  EXPECT_EQ(injected.result->termination.code, TerminationCode::kCancelled);
  EXPECT_EQ(injected.result->termination.stopped_at, failpoint::kServeAdmit);

  // The service stays serviceable.
  ServeRequest clean{*MotifCatalog::ByName("M(3,2)"), QueryOptions()};
  clean.options.mode = QueryMode::kCount;
  clean.options.delta = SharedDelta();
  EXPECT_TRUE(
      service.Submit(std::move(clean)).get().result->termination.complete());
}

}  // namespace
}  // namespace flowmotif
