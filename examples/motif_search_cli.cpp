// motif_search_cli — run flow motif queries against an edge-list file
// from the command line. The Swiss-army knife for adopting the library
// on your own interaction data.
//
// Input format: one interaction per line, "src dst timestamp flow",
// '#' comments allowed (see graph/graph_io.h).
//
// Usage:
//   motif_search_cli <edges.txt> --motif="M(3,3)" --delta=600 --phi=5
//   motif_search_cli <edges.txt> --motif="0-1-2-3" --mode=topk --k=10
//   motif_search_cli <edges.txt> --motif="0>1,0>2" --mode=count
//   motif_search_cli <edges.txt> --motif="M(4,3)" --mode=top1
//
// Modes:
//   enumerate  print every instance (capped by --limit)     [default]
//   count      count instances without constructing them
//   topk       the --k instances with the largest flow
//   top1       the single best instance via the DP module
#include <iostream>

#include "core/counter.h"
#include "core/dp.h"
#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "core/topk.h"
#include "graph/graph_io.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace flowmotif;

namespace {

/// Catalog name ("M(3,3)"), path notation ("0-1-2-0"), or edge-list
/// notation ("0>1,0>2").
StatusOr<Motif> ResolveMotif(const std::string& spec) {
  StatusOr<Motif> catalog = MotifCatalog::ByName(spec);
  if (catalog.ok()) return catalog;
  return Motif::Parse(spec);
}

void PrintInstance(const MotifInstance& instance) {
  std::cout << "  vertices(";
  for (size_t i = 0; i < instance.binding.size(); ++i) {
    std::cout << (i ? "," : "") << instance.binding[i];
  }
  std::cout << ") flow=" << instance.InstanceFlow()
            << " span=" << instance.Span() << " " << instance.ToString()
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("motif", "M(3,2)",
                  "catalog name, path (0-1-2), or edge list (0>1,0>2)");
  flags.AddString("mode", "enumerate", "enumerate|count|topk|top1");
  flags.AddInt64("delta", 600, "max time window length");
  flags.AddDouble("phi", 0.0, "min aggregated flow per motif edge");
  flags.AddInt64("k", 10, "k for --mode=topk");
  flags.AddInt64("limit", 20, "max instances printed in enumerate mode");
  flags.AddBool("strict", false, "enforce strict Def. 3.3 maximality");

  Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::cerr << parse_status << "\n\n"
              << "usage: motif_search_cli <edges.txt> [flags]\n"
              << flags.HelpString();
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::cerr << "usage: motif_search_cli <edges.txt> [flags]\n"
              << flags.HelpString();
    return 1;
  }

  StatusOr<InteractionGraph> loaded =
      LoadInteractionGraph(flags.positional()[0]);
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  TimeSeriesGraph graph = TimeSeriesGraph::Build(*loaded);
  std::cout << "Loaded " << graph.DebugString() << "\n";

  StatusOr<Motif> motif = ResolveMotif(flags.GetString("motif"));
  if (!motif.ok()) {
    std::cerr << motif.status() << "\n";
    return 1;
  }
  const Timestamp delta = flags.GetInt64("delta");
  const Flow phi = flags.GetDouble("phi");
  const std::string& mode = flags.GetString("mode");
  std::cout << "Motif " << motif->name() << " (" << motif->PathString()
            << "), delta=" << delta << ", phi=" << phi << ", mode=" << mode
            << "\n\n";

  WallTimer timer;
  if (mode == "enumerate") {
    EnumerationOptions options;
    options.delta = delta;
    options.phi = phi;
    options.strict_maximality = flags.GetBool("strict");
    FlowMotifEnumerator enumerator(graph, *motif, options);
    const int64_t limit = flags.GetInt64("limit");
    int64_t shown = 0;
    EnumerationResult result = enumerator.Run([&](const InstanceView& view) {
      if (shown < limit) {
        PrintInstance(view.Materialize());
        ++shown;
        if (shown == limit) std::cout << "  ... (limit reached)\n";
      }
      return true;
    });
    std::cout << "\n" << result.num_instances << " instances from "
              << result.num_structural_matches << " structural matches, "
              << result.num_windows_processed << " windows ("
              << timer.ElapsedSeconds() << "s)\n";
  } else if (mode == "count") {
    InstanceCounter counter(graph, *motif, delta, phi);
    InstanceCounter::Result result = counter.Run();
    std::cout << result.num_instances << " instances ("
              << result.num_structural_matches << " matches, "
              << result.num_windows << " windows, " << result.memo_hits
              << " memo hits, " << timer.ElapsedSeconds() << "s)\n";
  } else if (mode == "topk") {
    TopKSearcher searcher(graph, *motif, delta, flags.GetInt64("k"));
    TopKSearcher::Result result = searcher.Run();
    for (const auto& entry : result.entries) PrintInstance(entry.instance);
    std::cout << "\n" << result.entries.size() << " results ("
              << timer.ElapsedSeconds() << "s)\n";
  } else if (mode == "top1") {
    MaxFlowDpSearcher searcher(graph, *motif, delta);
    MaxFlowDpSearcher::Result result = searcher.Run();
    if (!result.found) {
      std::cout << "no instance found\n";
    } else {
      PrintInstance(result.best);
      std::cout << "\nmax flow " << result.max_flow << " in window ["
                << result.window.start << "," << result.window.end << "] ("
                << timer.ElapsedSeconds() << "s)\n";
    }
  } else {
    std::cerr << "unknown --mode=" << mode
              << " (expected enumerate|count|topk|top1)\n";
    return 1;
  }
  return 0;
}
