// motif_search_cli — run flow motif queries against an edge-list file
// from the command line. The Swiss-army knife for adopting the library
// on your own interaction data. All modes go through the QueryEngine
// facade, so --threads=N parallelizes any of them with results
// byte-identical to the serial run.
//
// Input format: one interaction per line, "src dst timestamp flow",
// '#' comments allowed (see graph/graph_io.h).
//
// Usage:
//   motif_search_cli <edges.txt> --motif="M(3,3)" --delta=600 --phi=5
//   motif_search_cli <edges.txt> --motif="0-1-2-3" --mode=topk --k=10
//   motif_search_cli <edges.txt> --motif="0>1,0>2" --mode=count
//   motif_search_cli <edges.txt> --motif="M(4,3)" --mode=top1 --threads=8
//
// Modes:
//   enumerate    print every instance (capped by --limit)    [default]
//   count        count instances without constructing them
//   topk         the --k instances with the largest flow
//   top1         the single best instance via the DP module
//   significance z-score / p-value vs flow-permuted graphs
#include <iostream>

#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "graph/graph_io.h"
#include "util/cancellation.h"
#include "util/flags.h"

using namespace flowmotif;

namespace {

/// Catalog name ("M(3,3)"), path notation ("0-1-2-0"), or edge-list
/// notation ("0>1,0>2").
StatusOr<Motif> ResolveMotif(const std::string& spec) {
  StatusOr<Motif> catalog = MotifCatalog::ByName(spec);
  if (catalog.ok()) return catalog;
  return Motif::Parse(spec);
}

StatusOr<QueryMode> ResolveMode(const std::string& mode) {
  if (mode == "enumerate") return QueryMode::kEnumerate;
  if (mode == "count") return QueryMode::kCount;
  if (mode == "topk") return QueryMode::kTopK;
  if (mode == "top1") return QueryMode::kTop1;
  if (mode == "significance") return QueryMode::kSignificance;
  return Status::InvalidArgument(
      "unknown --mode=" + mode +
      " (expected enumerate|count|topk|top1|significance)");
}

void PrintInstance(const MotifInstance& instance) {
  std::cout << "  vertices(";
  for (size_t i = 0; i < instance.binding.size(); ++i) {
    std::cout << (i ? "," : "") << instance.binding[i];
  }
  std::cout << ") flow=" << instance.InstanceFlow()
            << " span=" << instance.Span() << " " << instance.ToString()
            << "\n";
}

void PrintFooter(const QueryResult& result) {
  std::cout << "[" << result.threads_used << " thread"
            << (result.threads_used == 1 ? "" : "s") << ", ";
  if (result.mode == QueryMode::kSignificance) {
    // Significance parallelizes over whole graphs, not match batches,
    // and does not split its time into the two phases.
    std::cout << result.significance.random_counts.size() + 1
              << " graph counts, " << result.wall_seconds << "s wall]\n";
    return;
  }
  std::cout << result.num_batches << " batches, " << result.wall_seconds
            << "s wall, P1 " << result.stats.phase1_seconds << "s, P2 "
            << result.stats.phase2_seconds << "s cpu]\n";
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("motif", "M(3,2)",
                  "catalog name, path (0-1-2), or edge list (0>1,0>2)");
  flags.AddString("mode", "enumerate",
                  "enumerate|count|topk|top1|significance");
  flags.AddInt64("delta", 600, "max time window length");
  flags.AddDouble("phi", 0.0, "min aggregated flow per motif edge");
  flags.AddInt64("k", 10, "k for --mode=topk");
  flags.AddInt64("limit", 20, "max instances printed in enumerate mode");
  flags.AddBool("strict", false, "enforce strict Def. 3.3 maximality");
  flags.AddInt64("threads", 1,
                 "phase-P2 worker threads (0 = all hardware threads)");
  flags.AddInt64("random-graphs", 20,
                 "randomized graphs for --mode=significance");
  flags.AddInt64("seed", 1, "RNG seed for --mode=significance");
  flags.AddInt64("deadline_ms", 0,
                 "wall-clock budget in milliseconds (0 = none); an "
                 "expired run reports its partial result");
  flags.AddInt64("max_matches", -1,
                 "cap on phase-P1 structural matches (-1 = unlimited); "
                 "the query answers exactly over the first N matches");

  Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::cerr << parse_status << "\n\n"
              << "usage: motif_search_cli <edges.txt> [flags]\n"
              << flags.HelpString();
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::cerr << "usage: motif_search_cli <edges.txt> [flags]\n"
              << flags.HelpString();
    return 1;
  }

  StatusOr<InteractionGraph> loaded =
      LoadInteractionGraph(flags.positional()[0]);
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  TimeSeriesGraph graph = TimeSeriesGraph::Build(*loaded);
  std::cout << "Loaded " << graph.DebugString() << "\n";

  StatusOr<Motif> motif = ResolveMotif(flags.GetString("motif"));
  if (!motif.ok()) {
    std::cerr << motif.status() << "\n";
    return 1;
  }
  StatusOr<QueryMode> mode = ResolveMode(flags.GetString("mode"));
  if (!mode.ok()) {
    std::cerr << mode.status() << "\n";
    return 1;
  }

  QueryOptions options;
  options.mode = *mode;
  options.delta = flags.GetInt64("delta");
  options.phi = flags.GetDouble("phi");
  options.k = flags.GetInt64("k");
  options.strict_maximality = flags.GetBool("strict");
  options.collect_limit = flags.GetInt64("limit");
  options.num_random_graphs =
      static_cast<int>(flags.GetInt64("random-graphs"));
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));

  // Validate the numeric flags here so a typo gets one clear line
  // naming the flag; the engine would reject the same values, but with
  // a generic kError termination instead of a usage message.
  const auto reject = [](const std::string& message) {
    std::cerr << "INVALID_ARGUMENT: " << message << "\n";
    return 1;
  };
  if (options.delta < 0) return reject("--delta must be non-negative");
  if (options.phi < 0.0) return reject("--phi must be non-negative");
  if (options.k < 1) return reject("--k must be >= 1");
  if (options.collect_limit < -1) {
    return reject("--limit must be -1 (all), 0 (none), or positive");
  }
  // Validated before the narrowing cast: a negative (or absurd) value
  // must never reach ThreadPool's aborting CHECK, and casting first
  // could wrap it into a "valid" count.
  const int64_t threads_flag = flags.GetInt64("threads");
  const Status threads_status = ValidateThreadsFlag(threads_flag);
  if (!threads_status.ok()) return reject(threads_status.message());
  options.num_threads = static_cast<int>(threads_flag);
  if (options.num_random_graphs < 1) {
    return reject("--random-graphs must be >= 1");
  }
  const int64_t deadline_ms = flags.GetInt64("deadline_ms");
  if (deadline_ms < 0) return reject("--deadline_ms must be non-negative");
  if (deadline_ms > 0) {
    options.deadline = QueryDeadline::AfterMillis(deadline_ms);
  }
  const int64_t max_matches = flags.GetInt64("max_matches");
  if (max_matches < -1) {
    return reject("--max_matches must be -1 (unlimited) or non-negative");
  }
  options.budget.max_matches = max_matches;

  std::cout << "Motif " << motif->name() << " (" << motif->PathString()
            << "), delta=" << options.delta << ", phi=" << options.phi
            << ", mode=" << flags.GetString("mode") << "\n\n";

  const QueryEngine engine(graph);
  const QueryResult result = engine.Run(*motif, options);

  if (!result.termination.complete()) {
    // Deadline/budget truncation: the numbers below cover exactly the
    // first work_completed structural matches, not the whole graph.
    std::cout << "PARTIAL RESULT: " << result.termination.ToString();
    if (result.termination.work_completed >= 0) {
      std::cout << " after " << result.termination.work_completed
                << " work units";
    }
    std::cout << "\n\n";
  }

  switch (*mode) {
    case QueryMode::kEnumerate: {
      for (const MotifInstance& instance : result.instances) {
        PrintInstance(instance);
      }
      if (result.stats.num_instances >
          static_cast<int64_t>(result.instances.size())) {
        std::cout << "  ... (limit reached)\n";
      }
      std::cout << "\n" << result.stats.num_instances << " instances from "
                << result.stats.num_structural_matches
                << " structural matches, "
                << result.stats.num_windows_processed << " windows\n";
      break;
    }
    case QueryMode::kCount:
      std::cout << result.stats.num_instances << " instances ("
                << result.stats.num_structural_matches << " matches, "
                << result.stats.num_windows_processed << " windows, "
                << result.memo_hits << " memo hits)\n";
      break;
    case QueryMode::kTopK: {
      for (const TopKEntry& entry : result.topk) {
        PrintInstance(entry.instance);
      }
      std::cout << "\n" << result.topk.size() << " results\n";
      break;
    }
    case QueryMode::kTop1:
      if (!result.top1.found) {
        std::cout << "no instance found\n";
      } else {
        PrintInstance(result.top1.best);
        std::cout << "\nmax flow " << result.top1.max_flow << " in window ["
                  << result.top1.window.start << ","
                  << result.top1.window.end << "]\n";
      }
      break;
    case QueryMode::kSignificance: {
      const auto& report = result.significance;
      std::cout << "real count " << report.real_count << ", randomized mean "
                << report.random_summary.mean << " (sd "
                << report.random_summary.stddev << "), z-score "
                << report.z_score << ", p-value " << report.p_value << "\n";
      break;
    }
  }
  PrintFooter(result);
  return 0;
}
