// Passenger-flow scenario: the paper motivates chain motifs with
// region-to-region passenger movements (M(4,3) "chains of region-to-
// region movements in a passenger flow network", Sec. 6).
//
// This example generates a passenger-like zone network and:
//  1. compares chain vs. cycle motif prevalence (acyclic flows dominate
//     taxi traffic, per Sec. 6.2.2);
//  2. finds the single heaviest passenger relay with the DP module;
//  3. tracks how the best relay flow evolves window by window (the
//     per-window top-1 extensibility of Sec. 5.1).
//
// Run: ./build/examples/passenger_flows [--scale=0.4] [--delta=900]
#include <iomanip>
#include <iostream>

#include "core/dp.h"
#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "core/structural_match.h"
#include "gen/presets.h"
#include "util/flags.h"

using namespace flowmotif;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.4, "dataset scale relative to the preset");
  flags.AddInt64("delta", 900, "max window length (seconds)");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::cerr << s << "\n" << flags.HelpString();
    return 1;
  }

  const DatasetPreset& preset = GetPreset(DatasetKind::kPassenger);
  TimeSeriesGraph graph = GenerateDataset(preset, flags.GetDouble("scale"));
  std::cout << "Zone network: " << graph.DebugString() << "\n\n";

  const Timestamp delta = flags.GetInt64("delta");

  // --- 1. Chains dominate cycles in passenger traffic. ------------------
  std::cout << "Motif prevalence (delta=" << delta
            << "s, phi=" << preset.default_phi << "):\n";
  for (const char* name : {"M(3,2)", "M(4,3)", "M(3,3)", "M(4,4)A"}) {
    Motif motif = *MotifCatalog::ByName(name);
    EnumerationOptions options;
    options.delta = delta;
    options.phi = preset.default_phi;
    EnumerationResult result =
        FlowMotifEnumerator(graph, motif, options).Run();
    std::cout << "  " << std::left << std::setw(8) << name
              << (motif.HasCycle() ? "cycle " : "chain ")
              << result.num_instances << " instances\n";
  }

  // --- 2. The heaviest zone-to-zone relay (top-1 via DP). ---------------
  Motif chain = *MotifCatalog::ByName("M(4,3)");
  MaxFlowDpSearcher dp(graph, chain, delta);
  MaxFlowDpSearcher::Result best = dp.Run();
  if (!best.found) {
    std::cout << "\nNo relay instance found; increase --scale.\n";
    return 0;
  }
  std::cout << "\nHeaviest passenger relay (M(4,3), DP module):\n  zones ";
  for (size_t i = 0; i < best.binding.size(); ++i) {
    std::cout << (i ? " -> " : "") << best.binding[i];
  }
  std::cout << "\n  passengers=" << best.max_flow << " window=["
            << best.window.start << "," << best.window.end << "]\n  "
            << best.best.ToString() << "\n";

  // --- 3. Per-window evolution on the winning zone chain. ---------------
  std::cout << "\nBest relay flow per window on that chain:\n";
  int shown = 0;
  for (const auto& wb : dp.RunPerWindow(best.binding)) {
    if (!wb.found) continue;
    std::cout << "  [" << std::setw(8) << wb.window.start << ","
              << std::setw(8) << wb.window.end << "] flow=" << wb.max_flow
              << "\n";
    if (++shown >= 10) {
      std::cout << "  ...\n";
      break;
    }
  }
  return 0;
}
