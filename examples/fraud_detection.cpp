// Fraud-detection scenario: the paper's introduction motivates flow
// motifs with Financial Intelligence Units hunting suspicious transfer
// patterns — cyclic transactions and chains of significant transfers
// within a short window (Sec. 1). An FIU does not get its transaction
// log as a static file: transfers arrive continuously, and the analyst
// wants standing queries whose answers stay current as the stream
// grows.
//
// This example runs that continuous deployment end to end:
//  1. generates a bitcoin-like interaction network and replays it as a
//     time-ordered transfer stream;
//  2. seeds a QueryEngine with the first half (the "historical
//     backfill") and opens a live cyclic-motif query on it
//     (QueryEngine::OpenStream -> StreamingMotifMonitor);
//  3. replays the remaining transfers in batches, sealing an epoch per
//     batch: the monitor maintains instance counts, a sliding-horizon
//     live count, and the top-k highest-flow cycles incrementally, and
//     fires an alert the moment a cycle settles above the alert bound;
//  4. prints the final standing-query answers an analyst would see.
//
// Run: ./build/examples/fraud_detection [--scale=0.2] [--delta=600]
//      [--k=5] [--batch=400] [--horizon=2592000]
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "gen/presets.h"
#include "stream/streaming_monitor.h"
#include "util/flags.h"

using namespace flowmotif;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.2, "dataset scale relative to the preset");
  flags.AddInt64("delta", 600, "max window length (seconds)");
  flags.AddInt64("k", 5, "how many top cycles to track live");
  flags.AddInt64("batch", 400, "transfers sealed per stream epoch");
  flags.AddInt64("horizon", 30 * 86400,
                 "sliding horizon (seconds) for the live instance count");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::cerr << s << "\n" << flags.HelpString();
    return 1;
  }

  const DatasetPreset& preset = GetPreset(DatasetKind::kBitcoin);
  const TimeSeriesGraph full = GenerateDataset(preset, flags.GetDouble("scale"));
  std::cout << "Transaction trace: " << full.DebugString() << "\n";

  // Flatten the generated graph back into its transfer trace, ordered
  // by time — the stream a payment processor would deliver.
  std::vector<InteractionGraph::Edge> trace;
  for (const TimeSeriesGraph::PairEdge& pair : full.pairs()) {
    for (size_t i = 0; i < pair.series.size(); ++i) {
      const Interaction x = pair.series.at(i);
      trace.push_back({pair.src, pair.dst, x.t, x.f});
    }
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const InteractionGraph::Edge& a,
                      const InteractionGraph::Edge& b) { return a.t < b.t; });

  // Historical backfill: the first half of the trace seeds the engine.
  const size_t backfill = trace.size() / 2;
  InteractionGraph seed;
  seed.EnsureVertices(full.num_vertices());
  for (size_t i = 0; i < backfill; ++i) {
    const InteractionGraph::Edge& e = trace[i];
    Status st = seed.AddEdge(e.src, e.dst, e.t, e.f);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
  }
  const TimeSeriesGraph seed_graph = TimeSeriesGraph::Build(seed);
  const QueryEngine engine(seed_graph);

  // The standing query: closed money cycles (M(3,3)) of significant
  // flow inside a delta-length window, with a live top-k, a sliding
  // horizon, and an alert bound at 8x the preset's flow threshold.
  const Motif cycle = *MotifCatalog::ByName("M(3,3)");
  StreamOptions sopts;
  sopts.delta = flags.GetInt64("delta");
  sopts.phi = preset.default_phi;
  sopts.k = flags.GetInt64("k");
  sopts.horizon = flags.GetInt64("horizon");
  sopts.alert_min_flow = 8 * preset.default_phi;
  std::unique_ptr<StreamingMotifMonitor> monitor =
      engine.OpenStream(cycle, sopts);

  int64_t num_alerts = 0;
  monitor->SetAlertCallback([&num_alerts](
                                const StreamingMotifMonitor::Alert& alert) {
    ++num_alerts;
    std::cout << "  ALERT epoch " << alert.epoch << ": cycle users(";
    for (size_t j = 0; j < alert.instance.binding.size(); ++j) {
      std::cout << (j ? "," : "") << alert.instance.binding[j];
    }
    std::cout << ") flow=" << alert.flow << " settled at t=" << alert.end_time
              << "\n";
  });

  std::cout << "Backfill (" << backfill << " transfers): "
            << monitor->TotalInstances() << " cycle instances, "
            << monitor->num_matches() << " candidate rings\n\n";

  // Live replay: seal an epoch per batch of arriving transfers.
  const size_t batch = static_cast<size_t>(flags.GetInt64("batch"));
  std::cout << "Replaying " << trace.size() - backfill << " transfers in "
            << "epochs of " << batch << " (delta=" << sopts.delta
            << "s, horizon=" << sopts.horizon << "s, alert flow >= "
            << sopts.alert_min_flow << "):\n";
  // Ingest is an untrusted boundary: a malformed transfer (as a feed
  // glitch would produce) is rejected edge-by-edge without poisoning
  // the stream — demonstrate once, then replay the real trace.
  const Status rejected = monitor->Append(3, 7, -5, 0.0);
  std::cout << "Feed glitch rejected: " << rejected << "\n";

  size_t cursor = backfill;
  while (cursor < trace.size()) {
    const size_t end = std::min(cursor + batch, trace.size());
    for (; cursor < end; ++cursor) {
      const Status appended = monitor->Append(trace[cursor]);
      if (!appended.ok()) {
        std::cerr << "dropping transfer " << cursor << ": " << appended
                  << "\n";
      }
    }
    const StreamingMotifMonitor::EpochStats stats = monitor->SealEpoch();
    std::cout << "  epoch " << stats.epoch << ": +" << stats.num_appended
              << " transfers, revisited " << stats.num_matches_revisited
              << "/" << stats.num_matches_total << " rings (+"
              << stats.num_new_matches << " new), settled "
              << stats.num_instances_settled << " -> total "
              << monitor->TotalInstances() << ", live "
              << monitor->LiveInstances() << "\n";
  }

  std::cout << "\nStanding top-" << sopts.k
            << " cycles after the full stream:\n";
  const std::vector<TopKEntry> top = monitor->TopK();
  for (size_t i = 0; i < top.size(); ++i) {
    const TopKEntry& entry = top[i];
    std::cout << "  #" << i + 1 << " flow=" << entry.flow << " users(";
    for (size_t j = 0; j < entry.instance.binding.size(); ++j) {
      std::cout << (j ? "," : "") << entry.instance.binding[j];
    }
    std::cout << ") window=[" << entry.instance.StartTime() << ","
              << entry.instance.EndTime() << "]\n";
  }
  std::cout << "\n" << num_alerts << " alerts fired; "
            << monitor->LiveInstances() << " of "
            << monitor->TotalInstances()
            << " instances still inside the horizon\n";
  return 0;
}
