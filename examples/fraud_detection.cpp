// Fraud-detection scenario: the paper's introduction motivates flow
// motifs with Financial Intelligence Units hunting suspicious transfer
// patterns — cyclic transactions and chains of significant transfers
// within a short window (Sec. 1).
//
// This example generates a bitcoin-like interaction network, then:
//  1. counts cyclic-motif instances (money that returns to its origin);
//  2. runs top-k search to surface the highest-flow cycles;
//  3. groups activity per vertex set (structural match) to point at the
//     "most active rings" an analyst would inspect first.
//
// Run: ./build/examples/fraud_detection [--scale=0.2] [--delta=600]
//      [--k=5]
#include <iostream>

#include "core/match_activity.h"
#include "core/motif_catalog.h"
#include "core/topk.h"
#include "gen/presets.h"
#include "util/flags.h"

using namespace flowmotif;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.2, "dataset scale relative to the preset");
  flags.AddInt64("delta", 600, "max window length (seconds)");
  flags.AddInt64("k", 5, "how many top rings to report");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::cerr << s << "\n" << flags.HelpString();
    return 1;
  }

  const DatasetPreset& preset = GetPreset(DatasetKind::kBitcoin);
  TimeSeriesGraph graph = GenerateDataset(preset, flags.GetDouble("scale"));
  std::cout << "Transaction network: " << graph.DebugString() << "\n\n";

  const Timestamp delta = flags.GetInt64("delta");
  const int64_t k = flags.GetInt64("k");

  // --- 1. How common are closed money cycles vs. plain chains? ---------
  for (const char* name : {"M(3,2)", "M(3,3)", "M(4,4)A"}) {
    Motif motif = *MotifCatalog::ByName(name);
    EnumerationOptions options;
    options.delta = delta;
    options.phi = preset.default_phi;
    EnumerationResult result =
        FlowMotifEnumerator(graph, motif, options).Run();
    std::cout << name << (motif.HasCycle() ? " (cycle)" : " (chain)")
              << ": " << result.num_instances << " instances, "
              << result.num_structural_matches << " matches\n";
  }

  // --- 2. Highest-flow cycles: candidate laundering loops. --------------
  Motif cycle = *MotifCatalog::ByName("M(3,3)");
  TopKSearcher searcher(graph, cycle, delta, k);
  TopKSearcher::Result top = searcher.Run();
  std::cout << "\nTop-" << k << " cyclic transfers (delta=" << delta
            << "s):\n";
  for (size_t i = 0; i < top.entries.size(); ++i) {
    const auto& entry = top.entries[i];
    std::cout << "  #" << i + 1 << " flow=" << entry.flow << " users(";
    for (size_t j = 0; j < entry.instance.binding.size(); ++j) {
      std::cout << (j ? "," : "") << entry.instance.binding[j];
    }
    std::cout << ") window=[" << entry.instance.StartTime() << ","
              << entry.instance.EndTime() << "]\n";
  }

  // --- 3. Rings with the most repeated activity. -------------------------
  EnumerationOptions options;
  options.delta = delta;
  options.phi = preset.default_phi;
  MatchActivityAnalyzer activity(graph, cycle, options);
  std::cout << "\nMost active rings (repeat offenders):\n";
  for (const auto& ring : activity.TopMatches(k)) {
    std::cout << "  users(";
    for (size_t j = 0; j < ring.binding.size(); ++j) {
      std::cout << (j ? "," : "") << ring.binding[j];
    }
    std::cout << ") instances=" << ring.instance_count
              << " max_flow=" << ring.max_instance_flow
              << " active=[" << ring.first_window_start << ","
              << ring.last_window_start << "]\n";
  }

  // --- 4. Smurfing distribution: a general (non-path) fan-out motif. ------
  // One account splits funds to two mules inside the window; phi makes
  // sure each mule receives a significant aggregate even when the money
  // arrives as many small payments (the FIU "smurfing" signature of the
  // paper's introduction).
  StatusOr<Motif> fan_out = Motif::Parse("0>1,0>2", "FanOut");
  if (!fan_out.ok()) {
    std::cerr << fan_out.status() << "\n";
    return 1;
  }
  EnumerationOptions fan_options;
  fan_options.delta = delta;
  fan_options.phi = 4 * preset.default_phi;  // only significant aggregates
  FlowMotifEnumerator fan_enumerator(graph, *fan_out, fan_options);
  int64_t fan_shown = 0;
  std::cout << "\nSmurfing fan-outs (phi=" << fan_options.phi << "):\n";
  EnumerationResult fan_result =
      fan_enumerator.Run([&fan_shown](const InstanceView& view) {
        MotifInstance instance = view.Materialize();
        std::cout << "  source " << instance.binding[0] << " -> mules ("
                  << instance.binding[1] << "," << instance.binding[2]
                  << ") payments=" << instance.edge_sets[0].size() << "+"
                  << instance.edge_sets[1].size()
                  << " min_aggregate=" << instance.InstanceFlow() << "\n";
        return ++fan_shown < 5;  // show a handful
      });
  std::cout << "  (" << fan_result.num_instances
            << " qualifying fan-outs found in total)\n";
  return 0;
}
