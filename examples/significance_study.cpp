// Significance study: reproduces the Sec. 6.3 methodology on a generated
// facebook-like network — permute the flow values across all edges,
// re-count motif instances, and report z-scores and empirical p-values
// per motif (the Fig. 14 analysis in miniature).
//
// The whole catalog is analyzed with ONE AnalyzeAll call, the paper's
// setup: a single permutation ensemble (and one cross-graph window
// cache) serves every motif instead of being regenerated per motif.
// The record/replay columns show where the time goes under skeleton
// replay — the timestamp-only trace is recorded once on the real graph,
// then the whole ensemble is answered by dense flow replays.
//
// Run: ./build/examples/significance_study [--scale=0.15] [--randomizations=10]
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/motif_catalog.h"
#include "core/significance.h"
#include "gen/presets.h"
#include "util/flags.h"

using namespace flowmotif;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.15, "dataset scale relative to the preset");
  flags.AddInt64("randomizations", 10, "number of flow-permuted graphs");
  flags.AddInt64("seed", 1, "permutation seed");
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::cerr << s << "\n" << flags.HelpString();
    return 1;
  }

  const DatasetPreset& preset = GetPreset(DatasetKind::kFacebook);
  TimeSeriesGraph graph = GenerateDataset(preset, flags.GetDouble("scale"));
  std::cout << "Interaction network: " << graph.DebugString() << "\n\n";

  SignificanceAnalyzer::Options options;
  options.num_random_graphs =
      static_cast<int>(flags.GetInt64("randomizations"));
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  options.delta = preset.default_delta;
  options.phi = preset.default_phi;
  SignificanceAnalyzer analyzer(graph, options);

  const std::vector<Motif> motifs = MotifCatalog::All();
  const std::vector<SignificanceAnalyzer::MotifReport> reports =
      analyzer.AnalyzeAll(motifs);

  std::cout << "Motif significance vs " << options.num_random_graphs
            << " flow-permuted graphs (delta=" << options.delta
            << ", phi=" << options.phi << "):\n";
  std::cout << std::left << std::setw(9) << "motif" << std::right
            << std::setw(8) << "real" << std::setw(10) << "rnd-mean"
            << std::setw(9) << "rnd-sd" << std::setw(9) << "z" << std::setw(8)
            << "p" << std::setw(11) << "record-ms" << std::setw(11)
            << "replay-ms" << "\n";

  for (const SignificanceAnalyzer::MotifReport& report : reports) {
    std::cout << std::left << std::setw(9) << report.motif_name << std::right
              << std::setw(8) << report.real_count << std::setw(10)
              << std::fixed << std::setprecision(1)
              << report.random_summary.mean << std::setw(9)
              << report.random_summary.stddev << std::setw(9)
              << std::setprecision(2) << report.z_score << std::setw(8)
              << report.p_value;
    if (report.used_skeleton_replay) {
      std::cout << std::setw(11) << std::setprecision(2)
                << report.record_seconds * 1e3 << std::setw(11)
                << report.replay_seconds * 1e3;
    } else {
      // Trace budget exceeded (or replay disabled): this motif ran the
      // per-graph enumeration path instead.
      std::cout << std::setw(11) << "-" << std::setw(11) << "enum";
    }
    std::cout << "\n";
  }
  std::cout << "\nHigh z-scores with p=0 mean the real network contains far"
               "\nmore high-flow motif instances than chance: flow is being"
               "\ntransferred along paths, not generated independently."
               "\nrecord-ms is paid once on the real graph; replay-ms covers"
               "\nall " << options.num_random_graphs << " replays.\n";
  return 0;
}
