// Quickstart: builds the paper's running-example interaction network
// (Fig. 2), searches it for the cyclic motif M(3,3) with delta = 10 and
// phi = 7, and prints the instances — reproducing Fig. 4(a).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"

using namespace flowmotif;

int main() {
  // 1. Build the temporal multigraph of Fig. 2. Vertices are bitcoin
  //    users u1..u4 (ids 0..3); each edge is (src, dst, time, amount).
  InteractionGraph multigraph;
  struct Row {
    VertexId src, dst;
    Timestamp t;
    Flow f;
  };
  const Row rows[] = {
      {0, 1, 13, 5},  {0, 1, 15, 7},             // u1 -> u2
      {1, 2, 18, 20},                            // u2 -> u3
      {2, 0, 10, 10},                            // u3 -> u1
      {2, 3, 19, 5},  {2, 3, 21, 4},             // u3 -> u4
      {3, 1, 23, 7},                             // u4 -> u2
      {3, 0, 1, 2},   {3, 0, 3, 5},              // u4 -> u1
      {3, 2, 11, 10},                            // u4 -> u3
  };
  for (const Row& row : rows) {
    Status s = multigraph.AddEdge(row.src, row.dst, row.t, row.f);
    if (!s.ok()) {
      std::cerr << "AddEdge failed: " << s << "\n";
      return 1;
    }
  }

  // 2. Merge multi-edges into the time-series graph GT (Fig. 5).
  TimeSeriesGraph graph = TimeSeriesGraph::Build(multigraph);
  std::cout << "Graph: " << graph.DebugString() << "\n\n";

  // 3. Pick the motif: M(3,3) is the 3-node cyclic flow 0->1->2->0.
  StatusOr<Motif> motif = MotifCatalog::ByName("M(3,3)");
  if (!motif.ok()) {
    std::cerr << motif.status() << "\n";
    return 1;
  }

  // 4. Enumerate maximal flow motif instances with delta=10, phi=7.
  EnumerationOptions options;
  options.delta = 10;
  options.phi = 7.0;
  FlowMotifEnumerator enumerator(graph, *motif, options);

  std::cout << "Instances of " << motif->name() << " (delta=" << options.delta
            << ", phi=" << options.phi << "):\n";
  EnumerationResult result = enumerator.Run([](const InstanceView& view) {
    MotifInstance instance = view.Materialize();
    std::cout << "  vertices (";
    for (size_t i = 0; i < instance.binding.size(); ++i) {
      std::cout << (i ? "," : "") << "u" << instance.binding[i] + 1;
    }
    std::cout << ")  " << instance.ToString()
              << "  flow=" << instance.InstanceFlow()
              << "  span=" << instance.Span() << "\n";
    return true;
  });

  std::cout << "\nSummary: " << result.num_instances << " instances from "
            << result.num_structural_matches << " structural matches ("
            << result.num_windows_processed << " windows)\n";
  return 0;
}
